"""Deterministic concurrent dispatch of many Ψ races.

The paper runs one race at a time; a service interleaves many.  The
single-query semantics stay **bit-for-bit identical** to
:func:`repro.psi.executors.interleaved_race` because both run the same
loop: :class:`repro.psi.executors.RaceTask` (re-exported here), whose
:meth:`~repro.psi.executors.RaceTask.round` executes exactly one
quantum turn and can therefore be interleaved with other races —
engines are generators and don't notice what runs between their turns.

:class:`Dispatcher` owns one or more **pools** of ``workers`` simulated
workers each (``pools=1`` is the classic single-pool service;
``pools=N`` is the sharded layout, one pool per catalog shard).  Each
tick it walks the active races in the caller-provided priority order
(the service passes fair-share order) and runs one round per race while
its pool has slots; a race's variants are co-scheduled (the paper's
thread-group model), so a race needs ``len(alive_variants)`` slots in
its own pool.  All pools share one virtual clock, which advances one
quantum per tick — the parallel time of the workers' step slices.

Determinism: engines are deterministic generators, the tick order is a
pure function of submission history, and the clock is virtual — two
runs of the same workload produce identical winners, step totals, and
latencies, on any machine.  With ``pools=1`` the behaviour is
bit-for-bit the pre-sharding dispatcher: a pool never sees or steals
another pool's slots, so adding idle pools changes nothing.
"""

from __future__ import annotations

from typing import Optional

from ..obs import Counter, MetricsRegistry, counter_property
from ..psi.executors import (
    DEFAULT_RACE_QUANTUM,
    RaceOutcome,
    RaceTask,
)

__all__ = ["RaceTask", "Dispatcher"]


class Dispatcher:
    """Bounded worker pools interleaving many :class:`RaceTask`\\ s."""

    #: legacy int surface over the registry-visible counters
    ticks = counter_property("_m_ticks")
    work_steps = counter_property("_m_work_steps")

    def __init__(
        self,
        workers: int = 4,
        quantum: int = DEFAULT_RACE_QUANTUM,
        pools: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if pools < 1:
            raise ValueError("pools must be >= 1")
        self.workers = workers
        self.quantum = quantum
        self.pools = pools
        self.clock = 0
        self._m_ticks = Counter()
        #: total engine-steps executed across all races (work, not time)
        self._m_work_steps = Counter()
        #: per-pool engine-step bills — the per-shard load signal the
        #: rebalancer watches (pool_work[p] sums over the races pool p ran)
        self.pool_work = [0] * pools
        self._active: dict[object, RaceTask] = {}
        #: token -> pool index the race is pinned to
        self._pool_of: dict[object, int] = {}

    def register_metrics(
        self, registry: MetricsRegistry, prefix: str = "dispatcher"
    ) -> None:
        """Publish this dispatcher's counters + gauges into ``registry``."""
        registry.register(f"{prefix}.ticks", self._m_ticks)
        registry.register(f"{prefix}.work_steps", self._m_work_steps)
        registry.gauge(f"{prefix}.clock", lambda: self.clock)
        registry.gauge(f"{prefix}.active", lambda: self.active)
        registry.gauge(f"{prefix}.pools", lambda: self.pools)
        registry.gauge(f"{prefix}.pool_work", lambda: list(self.pool_work))

    def add_pool(self) -> int:
        """Grow the dispatcher by one worker pool (replica scale-out).

        Existing pools, races, and bills are untouched; the new pool
        starts empty with a zero bill.  Returns the new pool's index.
        """
        self.pools += 1
        self.pool_work.append(0)
        return self.pools - 1

    def admit(self, token: object, race: RaceTask, pool: int = 0) -> None:
        """Attach a race to ``pool`` under an opaque ``token``.

        A race wider than its pool can never be co-scheduled — reject
        it loudly rather than deadlocking the tick loop.
        """
        if not 0 <= pool < self.pools:
            raise ValueError(
                f"pool {pool} out of range (dispatcher has "
                f"{self.pools} pools)"
            )
        if race.width > self.workers:
            raise ValueError(
                f"race has {race.width} variants but each pool has "
                f"{self.workers} workers; shrink the variant set or "
                "grow the pool"
            )
        self._active[token] = race
        self._pool_of[token] = pool

    @property
    def active(self) -> int:
        """Number of races currently attached (across all pools)."""
        return len(self._active)

    def tokens(self) -> list:
        """Tokens of the attached races, in admission order."""
        return list(self._active)

    def slots_free(self, pool: int = 0) -> int:
        """Worker slots of ``pool`` not claimed by active races."""
        return self.workers - sum(
            r.width
            for t, r in self._active.items()
            if self._pool_of[t] == pool
        )

    def tick(
        self, order: list, frozen: frozenset = frozenset()
    ) -> list[tuple[object, int, Optional[RaceOutcome]]]:
        """One scheduling quantum over every pool.

        ``order`` is the priority order over tokens (the service passes
        fair-share order); unknown tokens are ignored, active tokens
        missing from ``order`` run last in admission order.  Each pool
        spends its own ``workers`` slots on the races pinned to it, in
        the shared priority order.  ``frozen`` pools (wedged replicas —
        see :mod:`repro.service.faults`) run nothing this tick: their
        races keep all state and simply stall, which is exactly a
        straggler.  Returns one
        ``(token, work_steps_this_tick, outcome_or_None)`` event per
        race that ran this tick (outcome set when it finished); the
        shared clock advances by one quantum.
        """
        sequence = [t for t in order if t in self._active]
        sequence += [t for t in self._active if t not in sequence]
        slots = [self.workers] * self.pools
        events: list[tuple[object, int, Optional[RaceOutcome]]] = []
        for token in sequence:
            race = self._active[token]
            pool = self._pool_of[token]
            if pool in frozen:
                continue
            need = max(1, race.width)
            if slots[pool] < need:
                continue
            slots[pool] -= need
            outcome = race.round()
            self.work_steps += race.last_round_steps
            self.pool_work[pool] += race.last_round_steps
            if outcome is not None:
                del self._active[token]
                del self._pool_of[token]
            events.append((token, race.last_round_steps, outcome))
        self.clock += self.quantum
        self.ticks += 1
        return events

    def cancel(self, token: object) -> None:
        """Detach and kill a race."""
        race = self._active.pop(token, None)
        self._pool_of.pop(token, None)
        if race is not None:
            race.close()
