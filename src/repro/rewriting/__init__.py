"""Isomorphic query rewritings and their label statistics (paper §6)."""

from .rewritings import (
    ALL_PAPER_REWRITINGS,
    DNDRewriting,
    ILFDNDRewriting,
    ILFINDRewriting,
    ILFRewriting,
    INDRewriting,
    OriginalRewriting,
    RandomRewriting,
    REWRITING_FACTORIES,
    RewrittenQuery,
    Rewriting,
    available_rewritings,
    make_rewriting,
)
from .stats import LabelStats

__all__ = [
    "ALL_PAPER_REWRITINGS",
    "DNDRewriting",
    "ILFDNDRewriting",
    "ILFINDRewriting",
    "ILFRewriting",
    "INDRewriting",
    "OriginalRewriting",
    "RandomRewriting",
    "REWRITING_FACTORIES",
    "RewrittenQuery",
    "Rewriting",
    "available_rewritings",
    "make_rewriting",
    "LabelStats",
]
