"""Isomorphic query rewritings (paper §6).

A rewriting permutes the node IDs of the query graph, producing an
isomorphic query (structure and labels untouched) whose different ID
assignment steers every matcher's heuristics down a different search
order.  The paper proposes five targeted rewritings, all reproduced
here, plus the identity and uniformly-random permutations (the latter
generate the "6 isomorphic instances" of §5):

========  ==========================================================
ILF       node IDs ascend with **increasing label frequency** in the
          stored graph — rare-label vertices get small IDs, so
          ID-ordered matchers touch selective vertices first
IND       IDs ascend with **increasing node degree** (in the query)
DND       IDs ascend with **decreasing node degree**
ILF+IND   ILF, ties broken IND-style
ILF+DND   ILF, ties broken DND-style
========  ==========================================================

Remaining ties are "(utterly) broken in an arbitrary way" (paper §6);
here *arbitrary* resolves to the original node ID, or to a seeded
shuffle when a ``random.Random`` is supplied — which is how several
distinct isomorphic instances of the same rewriting are produced.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..graphs import LabeledGraph
from .stats import LabelStats

__all__ = [
    "RewrittenQuery",
    "Rewriting",
    "OriginalRewriting",
    "ILFRewriting",
    "INDRewriting",
    "DNDRewriting",
    "ILFINDRewriting",
    "ILFDNDRewriting",
    "RandomRewriting",
    "REWRITING_FACTORIES",
    "make_rewriting",
    "available_rewritings",
    "ALL_PAPER_REWRITINGS",
]


@dataclass(frozen=True)
class RewrittenQuery:
    """A rewritten (isomorphic) query plus the applied permutation.

    ``perm[original_id] == new_id``.  :meth:`translate_embedding` maps an
    embedding of the rewritten query back to original query vertices, so
    callers never observe the permutation.
    """

    graph: LabeledGraph
    perm: tuple[int, ...]
    rewriting: str

    def translate_embedding(self, embedding: dict[int, int]) -> dict[int, int]:
        """Rewritten-query embedding -> original-query embedding."""
        return {
            orig: embedding[new] for orig, new in enumerate(self.perm)
        }


class Rewriting(ABC):
    """A node-ID permutation strategy for query graphs."""

    #: Name as used in the paper's figures ("ILF", "ILF+DND", ...).
    name: str = "rewriting"

    @abstractmethod
    def sort_key(
        self, query: LabeledGraph, u: int, stats: LabelStats
    ) -> tuple:
        """Primary sort key of vertex ``u`` (smaller key -> smaller ID)."""

    def permutation(
        self,
        query: LabeledGraph,
        stats: LabelStats,
        rng: Optional[random.Random] = None,
    ) -> tuple[int, ...]:
        """Compute ``perm[old] = new`` for this rewriting.

        With ``rng`` given, residual ties are broken by a seeded shuffle
        (distinct isomorphic instances); otherwise by original node ID.
        """
        order = list(query.vertices())
        if rng is not None:
            rng.shuffle(order)  # randomises the final tie-break
        order.sort(key=lambda u: self.sort_key(query, u, stats))
        perm = [0] * query.order
        for new_id, old_id in enumerate(order):
            perm[old_id] = new_id
        return tuple(perm)

    def apply(
        self,
        query: LabeledGraph,
        stats: LabelStats,
        rng: Optional[random.Random] = None,
    ) -> RewrittenQuery:
        """Produce the rewritten query."""
        perm = self.permutation(query, stats, rng)
        return RewrittenQuery(
            graph=query.permuted(perm, name=f"{query.name}:{self.name}"),
            perm=perm,
            rewriting=self.name,
        )


class OriginalRewriting(Rewriting):
    """Identity: the query exactly as generated ("Orig" in the paper)."""

    name = "Orig"

    def sort_key(self, query, u, stats):
        return (u,)

    def permutation(self, query, stats, rng=None):
        # identity regardless of rng: "Orig" is always the original IDs
        return tuple(query.vertices())


class ILFRewriting(Rewriting):
    """Increasing Label Frequency."""

    name = "ILF"

    def sort_key(self, query, u, stats):
        return (stats.frequency(query.label(u)),)


class INDRewriting(Rewriting):
    """Increasing Node Degree."""

    name = "IND"

    def sort_key(self, query, u, stats):
        return (query.degree(u),)


class DNDRewriting(Rewriting):
    """Decreasing Node Degree."""

    name = "DND"

    def sort_key(self, query, u, stats):
        return (-query.degree(u),)


class ILFINDRewriting(Rewriting):
    """ILF with IND tie-breaking."""

    name = "ILF+IND"

    def sort_key(self, query, u, stats):
        return (stats.frequency(query.label(u)), query.degree(u))


class ILFDNDRewriting(Rewriting):
    """ILF with DND tie-breaking."""

    name = "ILF+DND"

    def sort_key(self, query, u, stats):
        return (stats.frequency(query.label(u)), -query.degree(u))


class RandomRewriting(Rewriting):
    """Uniformly random node-ID permutation.

    Used for the paper's §5 study: "we generated our own isomorphic
    query rewritings ... permute the node IDs" — six random instances
    per query.  Deterministic given ``seed``.
    """

    name = "RND"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"RND{seed}"

    def sort_key(self, query, u, stats):  # pragma: no cover - unused
        return (u,)

    def permutation(self, query, stats, rng=None):
        local = random.Random(
            f"{self.seed}:{query.order}:{query.size}"
        )
        perm = list(query.vertices())
        local.shuffle(perm)
        return tuple(perm)


REWRITING_FACTORIES = {
    "Orig": OriginalRewriting,
    "ILF": ILFRewriting,
    "IND": INDRewriting,
    "DND": DNDRewriting,
    "ILF+IND": ILFINDRewriting,
    "ILF+DND": ILFDNDRewriting,
}

#: The five proposed rewritings, in the paper's presentation order.
ALL_PAPER_REWRITINGS = ("ILF", "IND", "DND", "ILF+IND", "ILF+DND")


def make_rewriting(name: str) -> Rewriting:
    """Instantiate a rewriting by paper name (``"ILF+DND"``, ``"RND3"``...)."""
    if name.startswith("RND"):
        suffix = name[3:] or "0"
        return RandomRewriting(seed=int(suffix))
    try:
        factory = REWRITING_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(REWRITING_FACTORIES)) + ", RND<k>"
        raise KeyError(
            f"unknown rewriting {name!r}; known: {known}"
        ) from None
    return factory()


def available_rewritings() -> tuple[str, ...]:
    """Registered deterministic rewriting names."""
    return tuple(REWRITING_FACTORIES)
