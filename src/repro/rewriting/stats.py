"""Label-frequency statistics backing the ILF rewriting.

The ILF family of rewritings orders query vertices by the frequency of
their labels *in the stored graph* (paper §6: "In a preprocessing step,
we compute the frequencies of node labels in the stored graph").  For
NFV methods the stored graph is a single large graph; for FTV methods
each candidate graph has its own frequencies, and a dataset-wide
aggregate is also offered for callers that want one rewriting per query
rather than per (query, graph) pair.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from ..graphs import LabeledGraph

__all__ = ["LabelStats"]


class LabelStats:
    """Frequency table of vertex labels in one or more stored graphs."""

    def __init__(self, frequencies: Counter) -> None:
        self._freq = Counter(frequencies)

    @classmethod
    def of_graph(cls, graph: LabeledGraph) -> "LabelStats":
        """Frequencies of a single stored graph."""
        return cls(graph.label_frequencies())

    @classmethod
    def of_collection(cls, graphs: Iterable[LabeledGraph]) -> "LabelStats":
        """Aggregate frequencies over a dataset of graphs."""
        total: Counter = Counter()
        for g in graphs:
            total.update(g.label_frequencies())
        return cls(total)

    def frequency(self, label: object) -> int:
        """Occurrences of ``label`` (0 when unseen — rarest possible)."""
        return self._freq.get(label, 0)

    def __len__(self) -> int:
        return len(self._freq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelStats({len(self._freq)} labels)"
