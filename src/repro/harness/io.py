"""Persistence for measured cost matrices and result tables.

A default-scale measurement campaign takes minutes; saving the matrix
lets every experiment driver (and any post-hoc analysis) replay from
disk.  The JSON format is self-contained: it round-trips the queries
themselves (so ``unit_size`` and future drivers keep working), the
thresholds, and every cost record.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..graphs import graph_from_json, graph_to_json
from ..metrics import CostRecord, Thresholds
from ..workload import Query
from .runner import FTVCostMatrix, NFVCostMatrix
from .tables import Table

__all__ = [
    "save_matrix",
    "load_matrix",
    "table_to_json",
]

_FORMAT_VERSION = 1


def _queries_payload(queries: list[Query]) -> list[dict]:
    return [
        {
            "graph": graph_to_json(q.graph),
            "source_graph_id": q.source_graph_id,
            "num_edges": q.num_edges,
            "seed": q.seed,
        }
        for q in queries
    ]


def _queries_from_payload(payload: list[dict]) -> list[Query]:
    return [
        Query(
            graph=graph_from_json(item["graph"]),
            source_graph_id=item["source_graph_id"],
            num_edges=item["num_edges"],
            seed=item["seed"],
        )
        for item in payload
    ]


def _records_payload(records: dict) -> list[list]:
    return [
        [unit, method, variant, rec.steps, rec.found, rec.killed]
        for (unit, method, variant), rec in sorted(
            records.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        )
    ]


def _records_from_payload(payload: list[list]) -> dict:
    return {
        (unit, method, variant): CostRecord(
            steps=steps, found=found, killed=killed
        )
        for unit, method, variant, steps, found, killed in payload
    }


def save_matrix(
    path: str | Path, matrix: NFVCostMatrix | FTVCostMatrix
) -> None:
    """Serialize a cost matrix to a JSON file."""
    payload: dict = {
        "format_version": _FORMAT_VERSION,
        "kind": (
            "nfv" if isinstance(matrix, NFVCostMatrix) else "ftv"
        ),
        "dataset": matrix.dataset,
        "thresholds": {
            "easy_steps": matrix.thresholds.easy_steps,
            "budget_steps": matrix.thresholds.budget_steps,
        },
        "methods": list(matrix.methods),
        "variant_names": list(matrix.variant_names),
        "queries": _queries_payload(matrix.queries),
        "records": _records_payload(matrix.records),
    }
    if isinstance(matrix, FTVCostMatrix):
        payload["pairs"] = [list(p) for p in matrix.pairs]
    Path(path).write_text(json.dumps(payload))


def load_matrix(path: str | Path) -> NFVCostMatrix | FTVCostMatrix:
    """Inverse of :func:`save_matrix`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported matrix format version {version!r}"
        )
    thresholds = Thresholds(
        easy_steps=payload["thresholds"]["easy_steps"],
        budget_steps=payload["thresholds"]["budget_steps"],
    )
    common = dict(
        dataset=payload["dataset"],
        thresholds=thresholds,
        queries=_queries_from_payload(payload["queries"]),
        methods=tuple(payload["methods"]),
        variant_names=tuple(payload["variant_names"]),
        records=_records_from_payload(payload["records"]),
    )
    if payload["kind"] == "nfv":
        return NFVCostMatrix(**common)
    if payload["kind"] == "ftv":
        return FTVCostMatrix(
            pairs=[tuple(p) for p in payload["pairs"]], **common
        )
    raise ValueError(f"unknown matrix kind {payload['kind']!r}")


def table_to_json(table: Table) -> str:
    """JSON encoding of a result table (title, columns, rows, notes)."""
    return json.dumps(
        {
            "title": table.title,
            "columns": table.columns,
            "rows": table.rows,
            "notes": table.notes,
        },
        sort_keys=True,
    )
