"""Experiment configuration: datasets, workloads, thresholds, variants.

Scales are chosen so the full benchmark suite completes in minutes of
pure Python while preserving the paper's regimes (DESIGN.md §2).  The
``tiny()`` constructors give second-scale configs for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import Thresholds

__all__ = [
    "NFV_ALGORITHMS",
    "FTV_METHODS",
    "PAPER_REWRITINGS",
    "RANDOM_INSTANCES",
    "WorkloadSpec",
    "NFVExperimentConfig",
    "FTVExperimentConfig",
    "PSI_FTV_VARIANT_SETS",
    "PSI_NFV_REWRITING_SETS",
    "PSI_NFV_MULTIALG_SETS",
]

#: NFV algorithms per dataset, as run in the paper (§3.4: QuickSI only
#: on yeast).
NFV_ALGORITHMS: dict[str, tuple[str, ...]] = {
    "yeast": ("GQL", "SPA", "QSI"),
    "human": ("GQL", "SPA"),
    "wordnet": ("GQL", "SPA"),
}

#: FTV methods per dataset (§3.4: GGSX not run on the synthetic set).
FTV_METHODS: dict[str, tuple[str, ...]] = {
    "synthetic": ("Grapes/1", "Grapes/4"),
    "ppi": ("Grapes/1", "Grapes/4", "GGSX"),
}

#: The five proposed rewritings (§6), in presentation order.
PAPER_REWRITINGS: tuple[str, ...] = (
    "ILF", "IND", "DND", "ILF+IND", "ILF+DND",
)

#: Six random isomorphic instances per query (§5).
RANDOM_INSTANCES: tuple[str, ...] = tuple(f"RND{i}" for i in range(6))


@dataclass(frozen=True)
class WorkloadSpec:
    """Queries per size for one dataset."""

    sizes: tuple[int, ...]
    queries_per_size: int
    seed: int = 42


@dataclass(frozen=True)
class NFVExperimentConfig:
    """One NFV dataset's full experiment setup."""

    dataset: str
    workload: WorkloadSpec
    thresholds: Thresholds = field(default_factory=Thresholds)
    max_embeddings: int = 1000
    #: Override the paper's per-dataset algorithm roster (used by the
    #: portfolio-extension benches, e.g. adding TurboISO).
    algorithms_override: tuple[str, ...] | None = None

    @property
    def algorithms(self) -> tuple[str, ...]:
        """The NFV algorithms run on this dataset."""
        if self.algorithms_override is not None:
            return self.algorithms_override
        return NFV_ALGORITHMS[self.dataset]

    @classmethod
    def default(cls, dataset: str) -> "NFVExperimentConfig":
        """Benchmark-scale config (paper sizes 10..32 scaled to 8..24).

        The easy threshold is per-dataset: bigger stored graphs have a
        higher unavoidable filtering floor (candidate-list probes scale
        with the graph), just as the paper's per-dataset easy AETs
        differ (yeast ~67 ms vs human ~180 ms vs wordnet more).
        """
        easy = {"yeast": 2_000, "human": 8_000, "wordnet": 10_000}
        qps = {"yeast": 8, "human": 6, "wordnet": 6}
        return cls(
            dataset=dataset,
            workload=WorkloadSpec(
                sizes=(8, 16, 24), queries_per_size=qps.get(dataset, 6)
            ),
            thresholds=Thresholds(
                easy_steps=easy.get(dataset, 2_000),
                budget_steps=200_000,
            ),
        )

    @classmethod
    def tiny(cls, dataset: str) -> "NFVExperimentConfig":
        """Test-scale config (seconds)."""
        return cls(
            dataset=dataset,
            workload=WorkloadSpec(sizes=(4,), queries_per_size=4),
            thresholds=Thresholds(easy_steps=500, budget_steps=20_000),
        )


@dataclass(frozen=True)
class FTVExperimentConfig:
    """One FTV dataset's full experiment setup."""

    dataset: str
    workload: WorkloadSpec
    thresholds: Thresholds = field(default_factory=Thresholds)
    max_path_length: int = 3

    @property
    def methods(self) -> tuple[str, ...]:
        """The FTV methods run on this dataset."""
        return FTV_METHODS[self.dataset]

    @classmethod
    def default(cls, dataset: str) -> "FTVExperimentConfig":
        """Benchmark-scale config (paper sizes 16..40 scaled to 10..24)."""
        sizes = {
            "ppi": (12, 16, 20, 24),
            "synthetic": (10, 14, 18),
        }
        qps = {"ppi": 3, "synthetic": 4}
        return cls(
            dataset=dataset,
            workload=WorkloadSpec(
                sizes=sizes.get(dataset, (10, 14, 18)),
                queries_per_size=qps.get(dataset, 4),
            ),
            thresholds=Thresholds(easy_steps=2_000, budget_steps=100_000),
        )

    @classmethod
    def tiny(cls, dataset: str) -> "FTVExperimentConfig":
        """Test-scale config (seconds)."""
        return cls(
            dataset=dataset,
            workload=WorkloadSpec(sizes=(5,), queries_per_size=3),
            thresholds=Thresholds(easy_steps=500, budget_steps=20_000),
        )


#: Ψ-FTV variant sets, as in Fig. 10/11 (each entry: label, rewritings).
PSI_FTV_VARIANT_SETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Psi(ILF/ILF+IND)", ("ILF", "ILF+IND")),
    ("Psi(ILF/ILF+DND)", ("ILF", "ILF+DND")),
    ("Psi(ILF/IND/DND)", ("ILF", "IND", "DND")),
    ("Psi(ILF/IND/DND/ILF+IND)", ("ILF", "IND", "DND", "ILF+IND")),
    ("Psi(all_rewritings)", PAPER_REWRITINGS),
    ("Psi(Or/all_rewritings)", ("Orig",) + PAPER_REWRITINGS),
)

#: Ψ-NFV rewriting-only variant sets, as in Fig. 13.
PSI_NFV_REWRITING_SETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Psi(Or/ILF/ILF+IND)", ("Orig", "ILF", "ILF+IND")),
    ("Psi(Or/ILF/IND/DND)", ("Orig", "ILF", "IND", "DND")),
    (
        "Psi(Or/ILF/IND/DND/ILF+IND)",
        ("Orig", "ILF", "IND", "DND", "ILF+IND"),
    ),
    ("Psi(all)", ("Orig",) + PAPER_REWRITINGS),
)

#: Ψ-NFV multi-algorithm sets, as in Fig. 14/15: (label, rewritings);
#: the algorithms are always GQL and SPA, crossed with each rewriting.
PSI_NFV_MULTIALG_SETS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Psi([GQL/SPA]-[Or])", ("Orig",)),
    ("Psi([GQL/SPA]-[ILF])", ("ILF",)),
    ("Psi([GQL/SPA]-[IND])", ("IND",)),
    ("Psi([GQL/SPA]-[DND])", ("DND",)),
    ("Psi([GQL/SPA]-[Or/DND])", ("Orig", "DND")),
)
