"""Cost-matrix measurement: run every (query, method, variant) attempt.

The paper's evaluation derives *all* of its figures and tables from the
same underlying measurements: per query (or per (query, stored-graph)
pair for FTV), the execution time of each isomorphic instance under
each algorithm, capped at the kill limit.  This module measures exactly
that matrix once per dataset; the experiment drivers in
:mod:`repro.harness.experiments` then aggregate it into every figure
and table, and Ψ race times are replayed from it via
:func:`repro.psi.race_from_costs` — precisely how the paper's speedup*
metric is defined (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..datasets import (
    graphgen_like,
    human_like,
    ppi_like,
    wordnet_like,
    yeast_like,
)
from ..graphs import LabeledGraph
from ..indexing import GGSXIndex, GrapesIndex
from ..matching import Budget
from ..metrics import CostRecord, Thresholds
from ..psi import PsiNFV, Variant
from ..rewriting import LabelStats, make_rewriting
from ..scheduling import TaskResult, first_match_schedule
from ..workload import Query, generate_workload
from .config import (
    FTVExperimentConfig,
    NFVExperimentConfig,
    PAPER_REWRITINGS,
    RANDOM_INSTANCES,
)

__all__ = [
    "ALL_VARIANT_NAMES",
    "NFV_DATASETS",
    "FTV_DATASETS",
    "NFVCostMatrix",
    "FTVCostMatrix",
    "build_nfv_graph",
    "build_ftv_graphs",
    "measure_nfv_matrix",
    "measure_ftv_matrix",
]

#: Every per-query instance measured: the original, the five proposed
#: rewritings, and six random isomorphic instances (§5).
ALL_VARIANT_NAMES: tuple[str, ...] = (
    ("Orig",) + PAPER_REWRITINGS + RANDOM_INSTANCES
)

#: The canonical dataset rosters (CLI and serving catalog import
#: these; the builder dicts below are keyed by exactly these names).
NFV_DATASETS: tuple[str, ...] = ("yeast", "human", "wordnet")
FTV_DATASETS: tuple[str, ...] = ("ppi", "synthetic")


def build_nfv_graph(dataset: str, scale: str = "default") -> LabeledGraph:
    """The stored graph for an NFV dataset name."""
    if scale == "default":
        builders = {
            "yeast": lambda: yeast_like(),
            "human": lambda: human_like(),
            "wordnet": lambda: wordnet_like(),
        }
    elif scale == "tiny":
        builders = {
            "yeast": lambda: yeast_like(n=200, num_labels=24),
            "human": lambda: human_like(n=150, num_labels=12),
            "wordnet": lambda: wordnet_like(n=400),
        }
    else:
        raise ValueError(f"unknown scale {scale!r}")
    try:
        return builders[dataset]()
    except KeyError:
        raise ValueError(f"unknown NFV dataset {dataset!r}") from None


def build_ftv_graphs(
    dataset: str, scale: str = "default"
) -> list[LabeledGraph]:
    """The stored graph collection for an FTV dataset name."""
    if scale == "default":
        builders = {
            "ppi": lambda: ppi_like(),
            "synthetic": lambda: graphgen_like(),
        }
    elif scale == "tiny":
        builders = {
            "ppi": lambda: ppi_like(
                num_graphs=3, avg_nodes=60, num_labels=8
            ),
            "synthetic": lambda: graphgen_like(
                num_graphs=5, avg_nodes=40, density=0.12, num_labels=5
            ),
        }
    else:
        raise ValueError(f"unknown scale {scale!r}")
    try:
        return builders[dataset]()
    except KeyError:
        raise ValueError(f"unknown FTV dataset {dataset!r}") from None


def _workload(
    graphs: list[LabeledGraph], config_workload
) -> list[Query]:
    queries: list[Query] = []
    for size in config_workload.sizes:
        queries.extend(
            generate_workload(
                graphs,
                config_workload.queries_per_size,
                size,
                seed=config_workload.seed + size,
            )
        )
    return queries


@dataclass
class NFVCostMatrix:
    """Charged costs of every (query, algorithm, instance) attempt."""

    dataset: str
    thresholds: Thresholds
    queries: list[Query]
    methods: tuple[str, ...]
    variant_names: tuple[str, ...]
    records: dict[tuple[int, str, str], CostRecord] = field(
        default_factory=dict
    )

    @property
    def units(self) -> range:
        """Measurement units (query indices)."""
        return range(len(self.queries))

    def unit_size(self, unit: int) -> int:
        """Query size (edges) of one unit."""
        return self.queries[unit].num_edges

    def record(self, unit: int, method: str, variant: str) -> CostRecord:
        """The attempt's cost record."""
        return self.records[(unit, method, variant)]

    def charged(self, unit: int, method: str, variant: str) -> int:
        """Charged steps (cap when killed), clamped to >= 1."""
        return max(1, self.record(unit, method, variant).charged(
            self.thresholds
        ))


def measure_nfv_matrix(
    config: NFVExperimentConfig,
    graph: Optional[LabeledGraph] = None,
    scale: str = "default",
    variant_names: tuple[str, ...] = ALL_VARIANT_NAMES,
    progress: bool = False,
) -> NFVCostMatrix:
    """Measure the full NFV cost matrix for one dataset.

    Every attempt runs the full matching problem (up to
    ``config.max_embeddings`` embeddings, count-only) under the
    experiment budget; killed attempts record the cap.
    """
    if graph is None:
        graph = build_nfv_graph(config.dataset, scale)
    queries = _workload([graph], config.workload)
    psi = PsiNFV(graph)
    budget = Budget(max_steps=config.thresholds.budget_steps)
    matrix = NFVCostMatrix(
        dataset=config.dataset,
        thresholds=config.thresholds,
        queries=queries,
        methods=config.algorithms,
        variant_names=variant_names,
    )
    for qi, query in enumerate(queries):
        for alg in config.algorithms:
            for name in variant_names:
                cost = psi.run_variant(
                    query.graph,
                    Variant(alg, name),
                    budget=budget,
                    max_embeddings=config.max_embeddings,
                    count_only=True,
                )
                matrix.records[(qi, alg, name)] = CostRecord(
                    steps=cost.steps, found=cost.found, killed=cost.killed
                )
        if progress:  # pragma: no cover - console convenience
            print(f"  [{config.dataset}] query {qi + 1}/{len(queries)}")
    return matrix


@dataclass
class FTVCostMatrix:
    """Charged costs of every ((query, graph), method, instance) attempt.

    Measurement units are (query, candidate graph) pairs, following the
    paper's protocol of timing each sub-iso test against a single
    stored graph (§4).  The pair universe is the Grapes candidate set,
    which is a subset of GGSX's (Grapes' exact path counts prune at
    least as hard as GGSX's suffix-accumulated counts), so every pair is
    verified by all methods.
    """

    dataset: str
    thresholds: Thresholds
    queries: list[Query]
    pairs: list[tuple[int, int]]  # (query index, graph id)
    methods: tuple[str, ...]
    variant_names: tuple[str, ...]
    records: dict[tuple[int, str, str], CostRecord] = field(
        default_factory=dict
    )

    @property
    def units(self) -> range:
        """Measurement units (pair indices)."""
        return range(len(self.pairs))

    def unit_size(self, unit: int) -> int:
        """Query size (edges) of one unit's query."""
        return self.queries[self.pairs[unit][0]].num_edges

    def record(self, unit: int, method: str, variant: str) -> CostRecord:
        """The attempt's cost record."""
        return self.records[(unit, method, variant)]

    def charged(self, unit: int, method: str, variant: str) -> int:
        """Charged steps (cap when killed), clamped to >= 1."""
        return max(1, self.record(unit, method, variant).charged(
            self.thresholds
        ))


def _truncated(result: TaskResult, allowance: int) -> TaskResult:
    """View of a cached component cost under a smaller allowance.

    A decision run reports its match on its final step, so a run
    truncated before its full cost has found nothing yet.
    """
    if result.steps <= allowance:
        return result
    return TaskResult(steps=allowance, found=False, killed=True)


def _caching_task(task):
    """Wrap a work chunk so repeated schedules reuse its measured cost.

    The chunk is evaluated at the largest allowance requested so far;
    smaller allowances are served by truncation (sound because a
    decision run's match lands on its final step).
    """
    memo: dict[str, TaskResult] = {}

    def run(allowance: int) -> TaskResult:
        cached = memo.get("result")
        if cached is None or (cached.killed and cached.steps < allowance):
            cached = task(allowance)
            memo["result"] = cached
        return _truncated(cached, allowance)

    return run


def measure_ftv_matrix(
    config: FTVExperimentConfig,
    graphs: Optional[list[LabeledGraph]] = None,
    scale: str = "default",
    variant_names: tuple[str, ...] = ALL_VARIANT_NAMES,
    progress: bool = False,
) -> FTVCostMatrix:
    """Measure the full FTV cost matrix for one dataset.

    For each (query, candidate graph) pair and each isomorphic
    instance, records the verification time of every configured method:
    Grapes/1 and Grapes/4 share per-component VF2 costs (the thread
    count only changes the simulated schedule); GGSX verifies against
    the whole graph.
    """
    if graphs is None:
        graphs = build_ftv_graphs(config.dataset, scale)
    queries = _workload(graphs, config.workload)
    budget_steps = config.thresholds.budget_steps
    grapes = GrapesIndex(
        graphs, max_path_length=config.max_path_length, threads=1
    )
    want_ggsx = "GGSX" in config.methods
    ggsx = (
        GGSXIndex(graphs, max_path_length=config.max_path_length)
        if want_ggsx
        else None
    )
    matrix = FTVCostMatrix(
        dataset=config.dataset,
        thresholds=config.thresholds,
        queries=queries,
        pairs=[],
        methods=config.methods,
        variant_names=variant_names,
    )
    grapes_threads = sorted(
        int(m.split("/")[1]) for m in config.methods if m.startswith("Grapes")
    )
    for qi, query in enumerate(queries):
        candidates = grapes.filter(query.graph)
        for gid in candidates:
            unit = len(matrix.pairs)
            matrix.pairs.append((qi, gid))
            stats = LabelStats.of_graph(graphs[gid])
            for name in variant_names:
                rq = make_rewriting(name).apply(query.graph, stats)
                # work chunks (component x root slice) are shared across
                # Grapes thread counts via an allowance-aware cache: a
                # chunk is (re-)evaluated only when a schedule needs it
                # under a larger step allowance than any previous run
                raw_tasks = grapes.verification_tasks(rq.graph, gid)
                tasks = [_caching_task(t) for t in raw_tasks]
                for threads in grapes_threads:
                    sched = first_match_schedule(
                        tasks, workers=threads, budget_steps=budget_steps
                    )
                    matrix.records[
                        (unit, f"Grapes/{threads}", name)
                    ] = CostRecord(
                        steps=sched.time,
                        found=sched.found,
                        killed=sched.killed,
                    )
                if ggsx is not None:
                    report = ggsx.verify(
                        rq.graph, gid, Budget(max_steps=budget_steps)
                    )
                    matrix.records[(unit, "GGSX", name)] = CostRecord(
                        steps=report.steps,
                        found=report.matched,
                        killed=report.killed,
                    )
        if progress:  # pragma: no cover - console convenience
            print(
                f"  [{config.dataset}] query {qi + 1}/{len(queries)} "
                f"({len(matrix.pairs)} pairs so far)"
            )
    return matrix
