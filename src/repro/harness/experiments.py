"""Experiment drivers: one function per paper figure/table.

Each driver aggregates a measured cost matrix (:mod:`.runner`) into a
:class:`~repro.harness.tables.Table` with the same rows/series the paper
reports.  DESIGN.md §4 maps figure/table numbers to drivers and bench
targets; EXPERIMENTS.md records paper-vs-measured shapes.

Conventions shared with the paper (§3.5, §5, §6):

* killed attempts are charged the kill budget before aggregating;
* (max/min) and rewriting-speedup statistics exclude units whose *every*
  instance was killed ("not helped"); the exclusion percentage is
  reported alongside, as the paper does;
* Ψ race times are replayed from the cost matrix via
  :func:`repro.psi.race_from_costs` (winner = cheapest completing
  variant, plus the overhead model's charge).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from ..metrics import (
    Band,
    CostRecord,
    Thresholds,
    band_breakdown,
    classify,
    max_min_ratio,
    summarize_distribution,
)
from ..psi import AttemptCost, OverheadModel, race_from_costs
from .config import PAPER_REWRITINGS, RANDOM_INSTANCES
from .tables import Table

__all__ = [
    "CostMatrix",
    "DEFAULT_OVERHEAD",
    "stragglers_wla_table",
    "band_percentages_table",
    "size_breakdown_table",
    "maxmin_table",
    "rewriting_aet_table",
    "rewriting_hard_pct_table",
    "rewriting_speedup_table",
    "alt_algorithm_speedup_table",
    "psi_race_time",
    "psi_speedup_table",
    "psi_multialg_speedup_table",
    "grapes_psi_by_size_table",
    "killed_pct_table",
]

#: Default thread spawn/sync overhead charged per race (paper §8 calls
#: this "non-trivial"; the ablation bench sweeps it).
DEFAULT_OVERHEAD = OverheadModel(base_steps=0, per_variant_steps=32)


class CostMatrix(Protocol):
    """What experiment drivers need from a measured matrix."""

    dataset: str
    thresholds: Thresholds
    methods: tuple[str, ...]
    variant_names: tuple[str, ...]

    @property
    def units(self) -> range: ...

    def unit_size(self, unit: int) -> int: ...

    def record(self, unit: int, method: str, variant: str) -> CostRecord: ...

    def charged(self, unit: int, method: str, variant: str) -> int: ...


def _mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs) if xs else float("nan")


# ----------------------------------------------------------------------
# §4 stragglers (Fig 1, Fig 2, Tables 3-4)
# ----------------------------------------------------------------------

def stragglers_wla_table(matrix: CostMatrix, title: str) -> Table:
    """WLA average execution time per band (Fig 1a/b, Fig 2a-c).

    Per method: the average charged steps of easy queries, of 2''-600''
    queries, and of all completed queries — demonstrating that the few
    expensive queries dominate the completed average.
    """
    table = Table(
        title,
        ["method", "easy", "2''-600''", "completed", "units"],
    )
    for method in matrix.methods:
        records = [
            matrix.record(u, method, "Orig") for u in matrix.units
        ]
        bd = band_breakdown(records, matrix.thresholds)
        table.add_row(
            method, bd.avg_easy, bd.avg_mid, bd.avg_completed, bd.count
        )
    table.add_note("WLA-average steps per band, original queries")
    return table


def band_percentages_table(matrix: CostMatrix, title: str) -> Table:
    """Percentage of easy / 2''-600'' / hard queries (Fig 1c, Fig 2d)."""
    table = Table(
        title, ["method", "% easy", "% 2''-600''", "% hard"]
    )
    for method in matrix.methods:
        records = [
            matrix.record(u, method, "Orig") for u in matrix.units
        ]
        bd = band_breakdown(records, matrix.thresholds)
        table.add_row(method, bd.pct_easy, bd.pct_mid, bd.pct_hard)
    return table


def size_breakdown_table(
    matrix: CostMatrix, title: str, sizes: Sequence[int] | None = None
) -> Table:
    """Per-size band breakdown (Tables 3-4).

    The paper reports the smallest (10-edge) and largest (32-edge)
    queries; by default this driver does the same with the workload's
    extreme sizes.
    """
    all_sizes = sorted({matrix.unit_size(u) for u in matrix.units})
    if sizes is None:
        sizes = (
            [all_sizes[0], all_sizes[-1]]
            if len(all_sizes) > 1
            else all_sizes
        )
    table = Table(
        title,
        [
            "size", "method", "AET easy", "% easy",
            "AET 2''-600''", "% 2''-600''", "% hard",
        ],
    )
    for size in sizes:
        units = [u for u in matrix.units if matrix.unit_size(u) == size]
        for method in matrix.methods:
            records = [matrix.record(u, method, "Orig") for u in units]
            bd = band_breakdown(records, matrix.thresholds)
            table.add_row(
                f"{size}e", method, bd.avg_easy, bd.pct_easy,
                bd.avg_mid, bd.pct_mid, bd.pct_hard,
            )
    return table


# ----------------------------------------------------------------------
# §5 isomorphic queries (Fig 3-4, Tables 5-6)
# ----------------------------------------------------------------------

def maxmin_table(
    matrix: CostMatrix,
    title: str,
    instances: tuple[str, ...] = RANDOM_INSTANCES,
) -> Table:
    """(max/min)QLA statistics over isomorphic instances (Fig 3/4, T 5/6).

    Per method: the distribution of ``max_j(t_ij) / min_j(t_ij)`` over
    queries, where ``j`` ranges over random isomorphic instances.
    Units where every instance was killed are excluded and reported.
    """
    table = Table(
        title,
        [
            "method", "avg", "stdDev", "min", "max", "median",
            "% not helped",
        ],
    )
    for method in matrix.methods:
        ratios: list[float] = []
        not_helped = 0
        total = 0
        for u in matrix.units:
            recs = [matrix.record(u, method, i) for i in instances]
            total += 1
            if all(r.killed for r in recs):
                not_helped += 1
                continue
            times = [matrix.charged(u, method, i) for i in instances]
            ratios.append(max_min_ratio(times))
        if not ratios:
            table.add_row(method, *(["-"] * 5), 100.0)
            continue
        s = summarize_distribution(ratios)
        table.add_row(
            method, s.mean, s.stddev, s.minimum, s.maximum, s.median,
            100.0 * not_helped / max(total, 1),
        )
    table.add_note(
        f"instances: {', '.join(instances)}; killed charged at budget "
        "(lower-bound estimation, as in the paper)"
    )
    return table


# ----------------------------------------------------------------------
# §6 rewritings (Fig 6-8, Tables 7-8)
# ----------------------------------------------------------------------

def rewriting_aet_table(matrix: CostMatrix, title: str) -> Table:
    """WLA average execution time per rewriting (Fig 6a/c)."""
    names = ("Orig",) + PAPER_REWRITINGS
    table = Table(title, ["rewriting"] + list(matrix.methods))
    for name in names:
        row: list[object] = [name]
        for method in matrix.methods:
            row.append(
                _mean([
                    matrix.charged(u, method, name) for u in matrix.units
                ])
            )
        table.add_row(*row)
    table.add_note("charged steps (killed at budget), WLA average")
    return table


def rewriting_hard_pct_table(matrix: CostMatrix, title: str) -> Table:
    """Percentage of hard (killed) queries per rewriting (Fig 6b/d)."""
    names = ("Orig",) + PAPER_REWRITINGS
    table = Table(title, ["rewriting"] + list(matrix.methods))
    for name in names:
        row: list[object] = [name]
        for method in matrix.methods:
            killed = sum(
                1
                for u in matrix.units
                if matrix.record(u, method, name).killed
            )
            row.append(100.0 * killed / max(len(matrix.units), 1))
        table.add_row(*row)
    return table


def rewriting_speedup_table(matrix: CostMatrix, title: str) -> Table:
    """speedup*QLA across rewritings (Fig 7/8, Tables 7/8).

    Per method: the distribution over queries of
    ``t_orig / min_j(t_j)`` where ``j`` ranges over the original and the
    five proposed rewritings.  All-killed units excluded and reported.
    """
    names = ("Orig",) + PAPER_REWRITINGS
    table = Table(
        title,
        [
            "method", "avg", "stdDev", "min", "max", "median",
            "% not helped",
        ],
    )
    for method in matrix.methods:
        speedups: list[float] = []
        not_helped = 0
        for u in matrix.units:
            recs = {n: matrix.record(u, method, n) for n in names}
            if all(r.killed for r in recs.values()):
                not_helped += 1
                continue
            t_orig = matrix.charged(u, method, "Orig")
            best = min(matrix.charged(u, method, n) for n in names)
            speedups.append(t_orig / best)
        if not speedups:
            table.add_row(method, *(["-"] * 5), 100.0)
            continue
        s = summarize_distribution(speedups)
        table.add_row(
            method, s.mean, s.stddev, s.minimum, s.maximum, s.median,
            100.0 * not_helped / max(len(matrix.units), 1),
        )
    return table


# ----------------------------------------------------------------------
# §7 algorithm-specific stragglers (Fig 9, Table 9)
# ----------------------------------------------------------------------

def alt_algorithm_speedup_table(
    matrix: CostMatrix,
    title: str,
    algorithm_sets: Sequence[tuple[str, tuple[str, ...]]],
) -> Table:
    """speedup*QLA from alternative algorithms (Fig 9, Table 9).

    For each (set label, algorithms) entry and each member algorithm:
    the distribution of ``t_alg(orig) / min_b(t_b(orig))`` over queries,
    ``b`` ranging over the set.  Shows that a straggler for one
    algorithm is typically easy for another.
    """
    table = Table(
        title,
        [
            "set", "method", "avg", "stdDev", "min", "max", "median",
            "% not helped",
        ],
    )
    for set_label, algs in algorithm_sets:
        for alg in algs:
            speedups: list[float] = []
            not_helped = 0
            for u in matrix.units:
                recs = {b: matrix.record(u, b, "Orig") for b in algs}
                if all(r.killed for r in recs.values()):
                    not_helped += 1
                    continue
                t_alg = matrix.charged(u, alg, "Orig")
                best = min(matrix.charged(u, b, "Orig") for b in algs)
                speedups.append(t_alg / best)
            if not speedups:
                table.add_row(set_label, alg, *(["-"] * 5), 100.0)
                continue
            s = summarize_distribution(speedups)
            table.add_row(
                set_label, alg, s.mean, s.stddev, s.minimum, s.maximum,
                s.median, 100.0 * not_helped / max(len(matrix.units), 1),
            )
    return table


# ----------------------------------------------------------------------
# §8 Ψ-framework (Fig 10-15, Table 10)
# ----------------------------------------------------------------------

def psi_race_time(
    matrix: CostMatrix,
    unit: int,
    members: Sequence[tuple[str, str]],
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> tuple[int, bool]:
    """Replay one Ψ race from the matrix.

    ``members`` are (method, variant) pairs — one per simulated thread.
    Returns (race steps, killed).
    """
    costs = {}
    for method, variant in members:
        rec = matrix.record(unit, method, variant)
        costs[(method, variant)] = AttemptCost(
            steps=rec.steps, found=rec.found, killed=rec.killed
        )
    race = race_from_costs(
        costs,
        budget_steps=matrix.thresholds.budget_steps,
        overhead=overhead,
    )
    return max(1, race.steps), race.killed


def psi_speedup_table(
    matrix: CostMatrix,
    title: str,
    variant_sets: Sequence[tuple[str, tuple[str, ...]]],
    mode: str = "qla",
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> Table:
    """Ψ speedup over the original query, per method (Fig 10/11/13).

    Each variant set races rewritings of the *same* method; speedup* is
    ``t_orig / t_psi`` aggregated QLA (``avg_i`` of ratios) or WLA
    (ratio of averages).
    """
    if mode not in ("qla", "wla"):
        raise ValueError("mode must be 'qla' or 'wla'")
    table = Table(
        title, ["variant set"] + [f"{m}" for m in matrix.methods]
    )
    for set_label, rewritings in variant_sets:
        row: list[object] = [set_label]
        for method in matrix.methods:
            orig_times: list[float] = []
            psi_times: list[float] = []
            for u in matrix.units:
                members = [(method, rw) for rw in rewritings]
                t_psi, _ = psi_race_time(matrix, u, members, overhead)
                orig_times.append(matrix.charged(u, method, "Orig"))
                psi_times.append(t_psi)
            if mode == "qla":
                row.append(
                    _mean([o / p for o, p in zip(orig_times, psi_times)])
                )
            else:
                row.append(_mean(orig_times) / _mean(psi_times))
        table.add_row(*row)
    table.add_note(
        f"speedup*_{mode.upper()} vs the method's original query; "
        f"race overhead {overhead.per_variant_steps} steps/variant"
    )
    return table


def psi_multialg_speedup_table(
    matrix: CostMatrix,
    title: str,
    variant_sets: Sequence[tuple[str, tuple[str, ...]]],
    baseline: str,
    algorithms: tuple[str, ...] = ("GQL", "SPA"),
    mode: str = "qla",
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> Table:
    """Ψ with multiple algorithms vs one vanilla algorithm (Fig 14/15).

    Each set crosses ``algorithms`` with its rewritings; speedup* is
    measured against ``baseline``'s original-query time.
    """
    if mode not in ("qla", "wla"):
        raise ValueError("mode must be 'qla' or 'wla'")
    table = Table(title, ["variant set", f"vs {baseline}"])
    for set_label, rewritings in variant_sets:
        members = [
            (alg, rw) for alg in algorithms for rw in rewritings
        ]
        orig_times: list[float] = []
        psi_times: list[float] = []
        for u in matrix.units:
            t_psi, _ = psi_race_time(matrix, u, members, overhead)
            orig_times.append(matrix.charged(u, baseline, "Orig"))
            psi_times.append(t_psi)
        if mode == "qla":
            value = _mean(
                [o / p for o, p in zip(orig_times, psi_times)]
            )
        else:
            value = _mean(orig_times) / _mean(psi_times)
        table.add_row(set_label, value)
    table.add_note(
        f"speedup*_{mode.upper()} vs vanilla {baseline} "
        f"(algorithms raced: {'/'.join(algorithms)})"
    )
    return table


def grapes_psi_by_size_table(
    matrix: CostMatrix,
    title: str,
    rewritings: tuple[str, ...] = ("ILF", "IND", "DND", "ILF+IND"),
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> Table:
    """Grapes/4 vs Ψ(Grapes/1 × 4 rewritings), by query size (Fig 12).

    Both contenders use 4-way parallelism; the paper's point is that Ψ
    spends its threads better (racing rewritings) than Grapes does
    (splitting components).
    """
    sizes = sorted({matrix.unit_size(u) for u in matrix.units})
    table = Table(
        title, ["size", "Grapes/4", "Psi(Grapes/1 x4 rewritings)"]
    )
    for size in sizes:
        units = [u for u in matrix.units if matrix.unit_size(u) == size]
        grapes4 = _mean(
            [float(matrix.charged(u, "Grapes/4", "Orig")) for u in units]
        )
        psi = _mean([
            float(
                psi_race_time(
                    matrix, u, [("Grapes/1", rw) for rw in rewritings],
                    overhead,
                )[0]
            )
            for u in units
        ])
        table.add_row(f"{size}e", grapes4, psi)
    table.add_note("WLA-average charged steps per query size")
    return table


def killed_pct_table(
    entries: Sequence[tuple[str, str, CostMatrix, Sequence[tuple[str, str]]]],
    title: str = "Table 10: % of killed queries, baseline vs Psi",
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> Table:
    """Percentage of killed queries: baseline vs Ψ (Table 10).

    ``entries`` rows are (dataset label, baseline method, matrix,
    Ψ members); a Ψ race is killed only when *all* members are killed.
    """
    table = Table(title, ["dataset", "baseline", "% killed", "% Psi killed"])
    for label, baseline, matrix, members in entries:
        units = list(matrix.units)
        base_killed = sum(
            1 for u in units if matrix.record(u, baseline, "Orig").killed
        )
        psi_killed = sum(
            1 for u in units if psi_race_time(matrix, u, members, overhead)[1]
        )
        table.add_row(
            f"{label} ({baseline})",
            baseline,
            100.0 * base_killed / max(len(units), 1),
            100.0 * psi_killed / max(len(units), 1),
        )
    return table
