"""Post-hoc analysis of measured cost matrices.

Tools for interrogating a measurement campaign beyond the paper's fixed
figures: which variant wins where, how much the hard sets of two
algorithms overlap (the quantitative form of the paper's Observation 5
— "stragglers are algorithm-specific"), and per-query diagnosis of a
straggler's escape routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..psi import OverheadModel
from .experiments import CostMatrix, DEFAULT_OVERHEAD, psi_race_time
from .tables import Table

__all__ = [
    "hard_set",
    "hard_overlap_table",
    "winner_attribution_table",
    "StragglerDiagnosis",
    "diagnose_straggler",
]


def hard_set(
    matrix: CostMatrix, method: str, variant: str = "Orig"
) -> frozenset[int]:
    """Units killed for ``method`` under ``variant``."""
    return frozenset(
        u
        for u in matrix.units
        if matrix.record(u, method, variant).killed
    )


def _jaccard(a: frozenset, b: frozenset) -> float:
    union = a | b
    if not union:
        return 0.0
    return len(a & b) / len(union)


def hard_overlap_table(
    matrix: CostMatrix,
    title: str = "Hard-set overlap between methods (Jaccard)",
    variant: str = "Orig",
) -> Table:
    """Pairwise overlap of the methods' straggler sets.

    The paper's Observation 5 predicts *low* overlap: a straggler for
    one algorithm is typically easy for another.  Jaccard 0 means fully
    algorithm-specific hard sets; 1 means the same queries are hard for
    both (racing algorithms cannot help those).
    """
    methods = list(matrix.methods)
    sets = {m: hard_set(matrix, m, variant) for m in methods}
    table = Table(
        title,
        ["method", "|hard|"] + [f"J vs {m}" for m in methods],
    )
    for a in methods:
        row: list[object] = [a, len(sets[a])]
        for b in methods:
            row.append(_jaccard(sets[a], sets[b]))
        table.add_row(*row)
    return table


def winner_attribution_table(
    matrix: CostMatrix,
    members: list[tuple[str, str]],
    title: str = "Race winner attribution",
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> Table:
    """How often each (method, variant) member wins the Ψ race.

    Wins are credited to the cheapest completing member (ties to the
    earliest in ``members``, mirroring the race executors).
    """
    wins = {m: 0 for m in members}
    killed_races = 0
    for u in matrix.units:
        best: Optional[tuple[str, str]] = None
        best_steps = None
        for member in members:
            rec = matrix.record(u, member[0], member[1])
            if rec.killed:
                continue
            if best_steps is None or rec.steps < best_steps:
                best = member
                best_steps = rec.steps
        if best is None:
            killed_races += 1
        else:
            wins[best] += 1
    total = len(list(matrix.units))
    table = Table(title, ["member", "wins", "% of races"])
    for member, count in wins.items():
        table.add_row(
            f"{member[0]}-{member[1]}", count,
            100.0 * count / max(total, 1),
        )
    if killed_races:
        table.add_note(
            f"{killed_races} races had no completing member (killed)"
        )
    return table


@dataclass
class StragglerDiagnosis:
    """Escape routes for one straggler unit.

    ``rescuers`` lists the (method, variant) attempts that completed,
    cheapest first; ``psi_steps`` is the race time over all of them.
    """

    unit: int
    method: str
    baseline_steps: int
    rescuers: list[tuple[str, str, int]]
    psi_steps: int
    psi_killed: bool

    @property
    def rescued(self) -> bool:
        """Whether any measured attempt completes this unit."""
        return bool(self.rescuers)

    @property
    def best_speedup(self) -> float:
        """Baseline time over the cheapest rescuer's time."""
        if not self.rescuers:
            return 1.0
        return self.baseline_steps / max(self.rescuers[0][2], 1)


def diagnose_straggler(
    matrix: CostMatrix,
    unit: int,
    method: str,
    overhead: OverheadModel = DEFAULT_OVERHEAD,
) -> StragglerDiagnosis:
    """Diagnose one unit: who rescues it, and at what cost.

    Considers every (method, variant) cell measured for the unit.
    """
    rescuers: list[tuple[str, str, int]] = []
    members: list[tuple[str, str]] = []
    for m in matrix.methods:
        for v in matrix.variant_names:
            members.append((m, v))
            rec = matrix.record(unit, m, v)
            if not rec.killed:
                rescuers.append((m, v, rec.steps))
    rescuers.sort(key=lambda item: (item[2], item[0], item[1]))
    psi_steps, psi_killed = psi_race_time(
        matrix, unit, members, overhead
    )
    return StragglerDiagnosis(
        unit=unit,
        method=method,
        baseline_steps=matrix.charged(unit, method, "Orig"),
        rescuers=rescuers,
        psi_steps=psi_steps,
        psi_killed=psi_killed,
    )
