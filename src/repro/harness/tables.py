"""ASCII table rendering for experiment reports.

Every experiment driver returns a :class:`Table`; benches print them so
`pytest benchmarks/ --benchmark-only` regenerates the paper's tables and
figure series as text.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["Table"]


@dataclass
class Table:
    """A titled grid of stringifiable cells."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the column count)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a footnote rendered under the grid."""
        self.notes.append(note)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        grid = [self.columns] + [
            [self._fmt(c) for c in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in grid)
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        for r, row in enumerate(grid):
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
            if r == 0:
                lines.append(sep)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list[object]:
        """Extract one column's cells by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def format_tables(tables: Sequence[Table]) -> str:
    """Join several rendered tables with blank lines."""
    return "\n\n".join(t.render() for t in tables)
