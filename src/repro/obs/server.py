"""Asyncio stats front door over a :class:`~repro.service.Service`.

A minimal HTTP/1.1 protocol server (stdlib ``asyncio`` only — no web
framework) whose event loop *pumps the virtual-clock core*: sockets
and wall-clock timers live exclusively in this layer, while every
query answer, step bill, and latency is produced by the same
deterministic ``submit``/``pump`` machinery the tests and benches
digest-pin.  Serving the same submission sequence over sockets or
in-process therefore yields identical stats — the property the CI
``obs-smoke`` job asserts.

Endpoints
---------
``POST /query``
    JSON body ``{"dataset", "query": {labels, edges[, name]},
    ["tenant"], ["options": {algorithms, rewritings, max_embeddings,
    count_only, decision_only}], ["budget_steps"]}`` — the ``query``
    object is the :func:`repro.graphs.io.graph_to_json` wire format.
    Blocks until the ticket resolves; admission rejections map to
    ``429`` with a wall-clock ``Retry-After`` header derived from the
    ticket's virtual ``retry_after`` via ``steps_per_second``.
``GET /stats``
    ``{"stats": Service.stats(), "registry": metrics.snapshot()}``.
``GET /trace/<ticket_id>``
    The recorded span tree for one ticket (404 once ring-evicted).
``GET /watch?frames=N&interval=S``
    Streaming ``application/x-ndjson``: one delta frame per interval
    (throughput, interval p50/p95, per-shard bills, fanout waste,
    cache hit rate, live replicas).  ``frames=0`` streams forever.
    On graceful shutdown the stream emits one last frame marked
    ``"final": true`` before ending.
``GET /healthz``
    Liveness probe.

Single-threaded by design: all service mutation happens on the event
loop, so no locking is ever needed around the deterministic core.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl

from ..graphs.io import graph_from_json
from ..metrics import summarize_latencies
from ..service import QueryOptions, Service, TicketState

__all__ = ["FrontDoor", "BackgroundFrontDoor", "run_front_door"]

#: default virtual-step -> wall-clock conversion for Retry-After
DEFAULT_STEPS_PER_SECOND = 1_000_000


class FrontDoor:
    """The asyncio protocol server; one instance per :class:`Service`."""

    def __init__(
        self,
        service: Service,
        host: str = "127.0.0.1",
        port: int = 0,
        steps_per_second: int = DEFAULT_STEPS_PER_SECOND,
        drain_timeout: float = 5.0,
    ) -> None:
        if steps_per_second < 1:
            raise ValueError("steps_per_second must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.steps_per_second = steps_per_second
        #: graceful-shutdown budget: how long :meth:`close` waits for
        #: in-flight queries to resolve and watchers to take their
        #: final frame before tearing the loop down anyway
        self.drain_timeout = drain_timeout
        #: (host, port) actually bound (port 0 resolves at start)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._work = asyncio.Event()
        #: set by :meth:`close`: watch streams emit one ``final`` frame
        #: and end instead of sleeping into the next interval
        self._draining = asyncio.Event()
        #: live ``/watch`` handler tokens (close waits for them)
        self._watchers: set = set()
        #: ticket.id -> future resolved when the core completes it
        self._waiters: Dict[int, asyncio.Future] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump_loop()
        )
        return self.address

    async def close(self) -> None:
        """Graceful drain, then teardown.

        Order matters: (1) stop accepting new connections, (2) let
        every in-flight ``POST /query`` resolve through the pump, (3)
        let every ``/watch`` stream emit one last frame (marked
        ``"final": true``) and end, (4) only then cancel the pump task
        and close the listening sockets.  Everything after step 1 is
        bounded by ``drain_timeout`` so a wedged client cannot hold
        shutdown hostage.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        self._draining.set()
        self._work.set()  # wake the pump so queued work finishes
        if self._server is not None:
            self._server.close()  # stop accepting; handlers keep going
        while self._waiters and loop.time() < deadline:
            await asyncio.sleep(0.01)
        while self._watchers and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(),
                    timeout=max(0.0, deadline - loop.time()) + 0.1,
                )
            except asyncio.TimeoutError:  # pragma: no cover - wedged peer
                pass

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # the pump loop: the only place the virtual clock advances
    # ------------------------------------------------------------------

    async def _pump_loop(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            while not self.service.idle:
                for ticket in self.service.pump():
                    fut = self._waiters.pop(ticket.id, None)
                    if fut is not None and not fut.done():
                        fut.set_result(ticket)
                # yield between ticks so responses flush and new
                # submissions join the running batch
                await asyncio.sleep(0)

    async def _resolve(self, ticket):
        """Wait (on the event loop) for the core to finish a ticket."""
        if ticket.done:
            return ticket
        fut = asyncio.get_running_loop().create_future()
        self._waiters[ticket.id] = fut
        self._work.set()
        return await fut

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, params, _headers, body = request
            if method == "GET" and path == "/stats":
                await self._respond(writer, 200, self._stats_payload())
            elif method == "GET" and path.startswith("/trace/"):
                await self._serve_trace(writer, path)
            elif method == "GET" and path == "/watch":
                await self._serve_watch(writer, params)
            elif method == "POST" and path == "/query":
                await self._serve_query(writer, body)
            elif method == "GET" and path == "/healthz":
                await self._respond(writer, 200, {"ok": True})
            else:
                await self._respond(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - server must not die
            try:
                await self._respond(writer, 500, {"error": repr(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        params = dict(parse_qsl(query_string))
        return method, path, params, headers, body

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 400: "Bad Request",
                  429: "Too Many Requests", 500: "Internal Server Error"}
        body = json.dumps(payload, default=str).encode()
        head = [
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for key, value in (extra_headers or {}).items():
            head.append(f"{key}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def _stats_payload(self) -> dict:
        return {
            "clock": self.service.clock,
            "stats": self.service.stats(),
            "registry": self.service.metrics.snapshot(),
        }

    async def _serve_trace(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        raw = path[len("/trace/"):]
        try:
            ticket_id = int(raw)
        except ValueError:
            await self._respond(
                writer, 400, {"error": f"bad ticket id {raw!r}"}
            )
            return
        trace = self.service.trace(ticket_id)
        if trace is None:
            await self._respond(
                writer, 404,
                {"error": f"no trace for ticket {ticket_id}"},
            )
            return
        payload = trace.as_dict()
        payload["tree"] = trace.span_tree()
        await self._respond(writer, 200, payload)

    async def _serve_query(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode())
            dataset = payload["dataset"]
            query = graph_from_json(json.dumps(payload["query"]))
        except (KeyError, ValueError, TypeError) as exc:
            await self._respond(
                writer, 400, {"error": f"bad query payload: {exc!r}"}
            )
            return
        tenant = payload.get("tenant", "public")
        options = _options_from(payload.get("options"))
        budget = payload.get("budget_steps")
        try:
            ticket = self.service.submit(
                dataset, query, tenant, options, budget
            )
        except KeyError as exc:
            await self._respond(
                writer, 404, {"error": f"unknown dataset: {exc}"}
            )
            return
        ticket = await self._resolve(ticket)
        await self._respond_ticket(writer, ticket)

    async def _respond_ticket(
        self, writer: asyncio.StreamWriter, ticket
    ) -> None:
        if ticket.state is TicketState.REJECTED:
            headers = {}
            status = 400
            if ticket.retry_after is not None:
                status = 429
                remaining = max(0, ticket.retry_after - self.service.clock)
                headers["Retry-After"] = str(
                    max(1, math.ceil(remaining / self.steps_per_second))
                )
            await self._respond(
                writer,
                status,
                {
                    "ticket_id": ticket.id,
                    "state": "rejected",
                    "reason": ticket.reject_reason,
                    "degraded": ticket.degraded,
                    "retry_after_steps": ticket.retry_after,
                },
                headers,
            )
            return
        result = ticket.result
        await self._respond(
            writer,
            200,
            {
                "ticket_id": ticket.id,
                "state": "done",
                "clock": self.service.clock,
                "latency_steps": ticket.latency,
                "result": {
                    "found": result.found,
                    "killed": result.killed,
                    "steps": result.steps,
                    "winner": result.winner_label,
                    "num_embeddings": result.num_embeddings,
                    "matching_ids": list(result.matching_ids),
                    "from_cache": result.from_cache,
                    "coalesced": result.coalesced,
                },
                "trace": self.service.trace(ticket.id) is not None,
            },
        )

    # ------------------------------------------------------------------
    # /watch streaming
    # ------------------------------------------------------------------

    def watch_frame(self, seq: int, prev_completed: int) -> dict:
        """One delta frame; pure read of the registry (no mutation).

        The interval latency summary uses the *same* nearest-rank
        definition as ``Service.stats()`` (``repro.metrics.core``), over
        exactly the completions of this interval.
        """
        svc = self.service
        completed = svc.completed_count
        delta = completed - prev_completed
        recent = list(svc._latencies)[-delta:] if delta else []
        latency = (
            summarize_latencies(recent).as_dict() if recent else None
        )
        replicas = svc.metrics.value("service.replicas")
        return {
            "seq": seq,
            "clock": svc.clock,
            "completed": completed,
            "delta_completed": delta,
            "latency_steps": latency,
            "per_shard_work": svc.metrics.value("service.per_shard_work"),
            "fanout_waste": svc.fanout_waste,
            "cache_hit_rate": svc.cache.as_metrics()["hit_rate"],
            "replicas_live": sum(replicas["live"]),
            "replica_states": replicas["states"],
            "queued": svc.admission.queued(),
            "active": svc.dispatcher.active,
            "degraded": svc.degraded,
            "retries": svc.retries,
            # dynamic collections: applied-mutation throughput and the
            # replay-recovery signal (journaled-but-unapplied records)
            "mutations_applied": svc.mutations_applied,
            "mutations_pending": len(svc._mutations),
            "journal_lag": svc.journal_lag(),
            "collection_epoch": svc.metrics.value(
                "service.mutations"
            )["epoch"],
        }

    async def _serve_watch(
        self, writer: asyncio.StreamWriter, params: Dict[str, str]
    ) -> None:
        try:
            frames = int(params.get("frames", "0"))
            interval = max(0.02, float(params.get("interval", "1.0")))
        except ValueError:
            await self._respond(writer, 400, {"error": "bad watch params"})
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()
        seq = 0
        prev_completed = self.service.completed_count
        token = object()
        self._watchers.add(token)
        try:
            while frames <= 0 or seq < frames:
                # sleep one interval — or less, if a drain begins: the
                # stream then emits one last frame (marked final) and
                # ends cleanly instead of dying mid-interval
                final = self._draining.is_set()
                if not final:
                    try:
                        await asyncio.wait_for(
                            self._draining.wait(), timeout=interval
                        )
                        final = True
                    except asyncio.TimeoutError:
                        pass
                frame = self.watch_frame(seq, prev_completed)
                frame["throughput_qps"] = round(
                    frame["delta_completed"] / interval, 3
                )
                if final:
                    frame["final"] = True
                prev_completed = frame["completed"]
                writer.write(
                    (json.dumps(frame, default=str) + "\n").encode()
                )
                await writer.drain()
                seq += 1
                if final:
                    return
        finally:
            self._watchers.discard(token)


def _options_from(opts: Optional[dict]) -> Optional[QueryOptions]:
    if not opts:
        return None
    defaults = QueryOptions()
    return QueryOptions(
        algorithms=tuple(opts.get("algorithms", defaults.algorithms)),
        rewritings=tuple(opts.get("rewritings", defaults.rewritings)),
        max_embeddings=int(
            opts.get("max_embeddings", defaults.max_embeddings)
        ),
        count_only=bool(opts.get("count_only", defaults.count_only)),
        decision_only=bool(
            opts.get("decision_only", defaults.decision_only)
        ),
    )


def run_front_door(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 0,
    steps_per_second: int = DEFAULT_STEPS_PER_SECOND,
    ready=None,
) -> None:
    """Blocking entry point for ``repro serve --listen`` — runs the
    event loop until interrupted.  ``ready(host, port)`` is called once
    the socket is bound (the CLI prints the resolved address).

    Shutdown is graceful: SIGINT/SIGTERM set a stop event (installed
    via ``loop.add_signal_handler`` where the platform supports it),
    and :meth:`FrontDoor.close` then drains in-flight queries and lets
    watch streams take a final frame before the loop exits.  Platforms
    without signal-handler support fall back to ``serve_forever`` and
    a plain ``KeyboardInterrupt``.
    """
    import signal

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        door = FrontDoor(
            service, host, port, steps_per_second=steps_per_second
        )
        bound_host, bound_port = await door.start()
        if ready is not None:
            ready(bound_host, bound_port)
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                continue
            installed.append(sig)
        try:
            if installed:
                await stop.wait()
            else:  # pragma: no cover - non-unix event loops
                try:
                    await door.serve_forever()
                except asyncio.CancelledError:
                    pass
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await door.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class BackgroundFrontDoor:
    """Run a :class:`FrontDoor` on a daemon thread (tests, notebooks).

    The service is only ever touched from the server's event loop while
    running — callers drive it through sockets, then ``stop()`` before
    inspecting service state in-process.
    """

    def __init__(
        self,
        service: Service,
        host: str = "127.0.0.1",
        port: int = 0,
        steps_per_second: int = DEFAULT_STEPS_PER_SECOND,
    ) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._steps_per_second = steps_per_second
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("front door failed to start in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"front door failed to start: {self._error!r}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        async def _main() -> None:
            door = FrontDoor(
                self.service,
                self._host,
                self._port,
                steps_per_second=self._steps_per_second,
            )
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.address = await door.start()
            finally:
                self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await door.close()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
            self._ready.set()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundFrontDoor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
