"""`repro.obs` — live observability for the serving layer.

Three pieces, layered strictly *outside* the deterministic core:

* :mod:`repro.obs.registry` — a unified metrics registry.  Counters,
  gauges, and fixed-bucket histograms are standalone publisher
  primitives; the registry is the namespace view over them, and
  ``Service.stats()`` is now a registry read (key-for-key identical to
  the pre-registry dict, pinned by ``tests/test_obs.py``).
* :mod:`repro.obs.trace` — per-ticket trace spans on the virtual
  clock, kept in a bounded ring buffer with a ``Service.trace(id)``
  accessor and JSONL export.
* :mod:`repro.obs.server` / :mod:`repro.obs.client` — an asyncio
  front door (stdlib only) whose event loop pumps the virtual-clock
  core: ``POST /query``, ``GET /stats``, ``GET /trace/<id>``, and a
  streaming ``GET /watch``.  Wall-clock time exists *only* in this
  layer — recording metrics and spans never changes a winner, a step
  bill, or a digest.

This package must not import :mod:`repro.service` at module level
(the service modules publish into it); the server/client modules,
which sit above the service, are imported explicitly as
``repro.obs.server`` / ``repro.obs.client``.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_property,
)
from .trace import Span, TicketTrace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TicketTrace",
    "Tracer",
    "counter_property",
]
