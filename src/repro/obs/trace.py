"""Per-ticket trace spans on the virtual clock.

Every ticket the service admits gets a :class:`TicketTrace`: a root
span (``"ticket"``) plus child spans and point events recording the
request's life — queueing, the route plan, each fan-out leg with its
replica placement, wave launches and hedges, fault hits, retries,
merge, and the cache path.  Timestamps are *virtual-clock steps*, so
a trace is as deterministic as the run that produced it: two runs of
the same submission history yield identical traces.

Traces live in a bounded ring buffer (:class:`Tracer`): when a new
ticket would exceed ``capacity``, the oldest trace is evicted and
later span operations for that ticket become no-ops.  Tracing is
strictly write-only bookkeeping — it never raises into the serving
path and never feeds back into scheduling.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

__all__ = ["Span", "TicketTrace", "Tracer"]


@dataclass
class Span:
    """One timed interval (or point event, when ``end == start``)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: int
    end: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        return cls(
            span_id=doc["span_id"],
            parent_id=doc["parent_id"],
            name=doc["name"],
            start=doc["start"],
            end=doc["end"],
            attrs=dict(doc.get("attrs", {})),
        )


class TicketTrace:
    """The span tree for one ticket, rooted at span 0 (``"ticket"``)."""

    __slots__ = ("ticket_id", "spans", "_open", "_next_id")

    ROOT = 0

    def __init__(self, ticket_id: int, clock: int, **attrs: Any) -> None:
        self.ticket_id = ticket_id
        self.spans: List[Span] = [Span(0, None, "ticket", clock, attrs=dict(attrs))]
        self._open = {0}
        self._next_id = 1

    # -- span lifecycle ----------------------------------------------
    def begin(self, name: str, clock: int, parent: int = ROOT, **attrs: Any) -> int:
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(Span(span_id, parent, name, clock, attrs=dict(attrs)))
        self._open.add(span_id)
        return span_id

    def end(self, span_id: Optional[int], clock: int, **attrs: Any) -> None:
        if span_id is None or span_id not in self._open:
            return
        span = self.spans[span_id]
        span.end = clock
        if attrs:
            span.attrs.update(attrs)
        self._open.discard(span_id)

    def event(self, name: str, clock: int, parent: int = ROOT, **attrs: Any) -> int:
        span_id = self._next_id
        self._next_id += 1
        self.spans.append(Span(span_id, parent, name, clock, end=clock, attrs=dict(attrs)))
        return span_id

    def finish(self, clock: int, **attrs: Any) -> None:
        """Close the root (and, defensively, any span the instrumentation
        forgot — marked ``auto_closed`` so the completeness tests catch
        the gap without the runtime ever holding an open trace)."""
        for span_id in sorted(self._open):
            if span_id == self.ROOT:
                continue
            self.end(span_id, clock, auto_closed=True)
        root = self.spans[self.ROOT]
        root.end = clock
        if attrs:
            root.attrs.update(attrs)
        self._open.discard(self.ROOT)

    # -- views --------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self._open

    @property
    def root(self) -> Span:
        return self.spans[self.ROOT]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def span_tree(self) -> Dict[str, Any]:
        """Nested dict view (children grouped under their parent)."""
        children: Dict[int, List[Span]] = {}
        for span in self.spans[1:]:
            children.setdefault(span.parent_id if span.parent_id is not None else 0, []).append(span)

        def render(span: Span) -> Dict[str, Any]:
            node = span.as_dict()
            kids = children.get(span.span_id, [])
            if kids:
                node["children"] = [render(k) for k in kids]
            return node

        return render(self.spans[self.ROOT])

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ticket_id": self.ticket_id,
            "done": self.done,
            "spans": [s.as_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TicketTrace":
        """Rebuild a trace from :meth:`as_dict` output (JSONL import).

        The round-trip is lossless: spans keep their ids, ordering,
        and attrs, and still-open spans stay open (``_next_id`` resumes
        past the highest imported id so a revived trace can grow)."""
        trace = cls.__new__(cls)
        trace.ticket_id = doc["ticket_id"]
        trace.spans = [Span.from_dict(s) for s in doc["spans"]]
        trace._open = {s.span_id for s in trace.spans if not s.closed}
        trace._next_id = (
            max((s.span_id for s in trace.spans), default=-1) + 1
        )
        return trace


class Tracer:
    """Bounded ring buffer of ticket traces, keyed by ticket id.

    All mutators are forgiving: operations on evicted or never-started
    tickets are silent no-ops, so tracing can never break serving.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._traces: "OrderedDict[int, TicketTrace]" = OrderedDict()

    # -- lifecycle ----------------------------------------------------
    def start(self, ticket_id: int, clock: int, **attrs: Any) -> TicketTrace:
        trace = TicketTrace(ticket_id, clock, **attrs)
        self._traces[ticket_id] = trace
        self._traces.move_to_end(ticket_id)
        while len(self._traces) > self.capacity:
            self._traces.popitem(last=False)
            self.dropped += 1
        return trace

    def get(self, ticket_id: int) -> Optional[TicketTrace]:
        return self._traces.get(ticket_id)

    def begin(
        self, ticket_id: int, name: str, clock: int, parent: int = TicketTrace.ROOT, **attrs: Any
    ) -> Optional[int]:
        trace = self._traces.get(ticket_id)
        if trace is None:
            return None
        return trace.begin(name, clock, parent, **attrs)

    def end(self, ticket_id: int, span_id: Optional[int], clock: int, **attrs: Any) -> None:
        trace = self._traces.get(ticket_id)
        if trace is not None:
            trace.end(span_id, clock, **attrs)

    def event(
        self, ticket_id: int, name: str, clock: int, parent: int = TicketTrace.ROOT, **attrs: Any
    ) -> Optional[int]:
        trace = self._traces.get(ticket_id)
        if trace is None:
            return None
        return trace.event(name, clock, parent, **attrs)

    def finish(self, ticket_id: int, clock: int, **attrs: Any) -> None:
        trace = self._traces.get(ticket_id)
        if trace is not None:
            trace.finish(clock, **attrs)

    # -- export -------------------------------------------------------
    def traces(self) -> List[TicketTrace]:
        return list(self._traces.values())

    def export_jsonl(self, dest: Union[str, IO[str]]) -> int:
        """Write one JSON object per ticket trace; returns the count."""
        traces = self.traces()
        if isinstance(dest, str):
            with open(dest, "w", encoding="utf-8") as fh:
                for trace in traces:
                    fh.write(json.dumps(trace.as_dict(), sort_keys=True) + "\n")
        else:
            for trace in traces:
                dest.write(json.dumps(trace.as_dict(), sort_keys=True) + "\n")
        return len(traces)

    def as_metrics(self) -> Dict[str, int]:
        return {
            "tickets": len(self._traces),
            "dropped": self.dropped,
            "capacity": self.capacity,
        }
