"""Unified metrics registry for the serving stack.

Design
------
Metric primitives (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
are standalone publishers: a component constructs and mutates its own
metric objects and keeps working even when no registry is attached.
:class:`MetricsRegistry` is the *namespace* over them — components
register their metrics under canonical dotted names and
``snapshot()`` renders every metric in sorted-name order, so two runs
of the same deterministic workload produce byte-identical snapshots.

Two rules keep the registry digest-stable:

* every value is read on demand (``read()``) — nothing is sampled on
  wall-clock timers;
* histograms use *fixed* bucket bounds chosen at construction time
  (power-of-two step bounds by default), never adaptive resizing.

Legacy attribute compatibility: components that historically exposed
plain ``int`` counters (``service.retries += 1`` and friends) keep
that surface via :func:`counter_property`, which forwards attribute
reads/writes to an underlying :class:`Counter`.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_property",
]

#: Fixed power-of-two virtual-step bounds (1 .. 2**21).  Values above
#: the last bound land in a final overflow bucket.  The bounds are part
#: of the snapshot so exporters can reconstruct the distribution.
DEFAULT_LATENCY_BUCKETS: Tuple[int, ...] = tuple(1 << k for k in range(22))


class Counter:
    """A monotonically *usable* integer cell (writes are allowed so the
    legacy ``obj.counter = 0`` reset idiom keeps working)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value

    def read(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A read-through metric: ``read()`` calls the supplied function.

    Used for values the components already maintain (queue depths,
    replica states, cache hit rates) — the gauge is a *view*, so it can
    never drift from the component's own bookkeeping.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn

    def read(self) -> Any:
        return self.fn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.fn!r})"


class Histogram:
    """Fixed-bound histogram over virtual-clock step values.

    ``counts[i]`` counts observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (first bucket: ``v <= bounds[0]``);
    the trailing bucket counts overflow above the last bound.  Bounds
    are immutable after construction so snapshots are digest-stable.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds: Tuple[int, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: int, n: int = 1) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        self.counts[idx] += n
        self.count += n
        self.total += value * n

    def read(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self.total})"


def counter_property(attr: str) -> property:
    """Expose ``self.<attr>`` (a :class:`Counter`) as a plain int.

    Keeps the historical public surface — ``service.retries += 1``,
    ``admission.rejected = 0`` in tests — while the value lives in a
    registry-visible :class:`Counter`.
    """

    def fget(self: Any) -> int:
        return getattr(self, attr).value

    def fset(self: Any, value: int) -> None:
        getattr(self, attr).value = value

    return property(fget, fset)


class MetricsRegistry:
    """Namespace of named metrics with a deterministic snapshot.

    Names are dotted paths (``"service.fanout_waste"``,
    ``"admission.rejected"``).  Registration is collision-checked;
    components that are legitimately re-created against the same
    service (e.g. a fresh ``Rebalancer``) pass ``replace=True``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- registration -------------------------------------------------
    def register(self, name: str, metric: Any, *, replace: bool = False) -> Any:
        if not replace and name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        if not hasattr(metric, "read"):
            raise TypeError(f"metric {name!r} has no read(): {metric!r}")
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, value: int = 0, *, replace: bool = False) -> Counter:
        return self.register(name, Counter(value), replace=replace)

    def gauge(self, name: str, fn: Callable[[], Any], *, replace: bool = False) -> Gauge:
        return self.register(name, Gauge(fn), replace=replace)

    def histogram(
        self,
        name: str,
        bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS,
        *,
        replace: bool = False,
    ) -> Histogram:
        return self.register(name, Histogram(bounds), replace=replace)

    # -- reads --------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> Any:
        return self._metrics[name].read()

    def snapshot(self) -> Dict[str, Any]:
        """All metrics, read now, in sorted-name order."""
        return {name: self._metrics[name].read() for name in sorted(self._metrics)}
