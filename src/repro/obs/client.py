"""Blocking HTTP client for the observability front door.

Stdlib-only (``http.client``) helpers used by the ``repro tail`` CLI,
the server tests, and the CI ``obs-smoke`` driver.  Deliberately
synchronous: callers that drive deterministic comparisons submit one
query at a time and want the response before the next submit.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple

from ..graphs import LabeledGraph

__all__ = [
    "ObsClient",
    "query_payload",
]


def query_payload(graph: LabeledGraph) -> Dict[str, Any]:
    """The ``POST /query`` wire rendering of one query graph
    (:func:`repro.graphs.io.graph_to_json`'s payload shape)."""
    return {
        "name": graph.name,
        "labels": list(graph.labels),
        "edges": [
            [u, v, graph.edge_label(u, v)] for u, v in graph.edges()
        ],
    }


class ObsClient:
    """One front-door endpoint, many one-shot requests."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """One request; returns (status, parsed JSON, lowercase headers)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else None
            return (
                response.status,
                parsed,
                {k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        status, payload, _ = self.request("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned {status}: {payload}")
        return payload

    def trace(self, ticket_id: int) -> Tuple[int, Optional[dict]]:
        status, payload, _ = self.request("GET", f"/trace/{ticket_id}")
        return status, payload

    def submit(
        self,
        dataset: str,
        graph: LabeledGraph,
        tenant: str = "public",
        options: Optional[dict] = None,
        budget_steps: Optional[int] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Submit one query and block until its response."""
        body: Dict[str, Any] = {
            "dataset": dataset,
            "tenant": tenant,
            "query": query_payload(graph),
        }
        if options:
            body["options"] = options
        if budget_steps is not None:
            body["budget_steps"] = budget_steps
        return self.request("POST", "/query", body)

    def watch(
        self, frames: int = 0, interval: float = 1.0
    ) -> Iterator[dict]:
        """Consume ``/watch``, yielding one frame dict per interval."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=max(self.timeout, interval * 10)
        )
        try:
            conn.request(
                "GET", f"/watch?frames={frames}&interval={interval}"
            )
            response = conn.getresponse()
            if response.status != 200:
                raise RuntimeError(
                    f"/watch returned {response.status}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
