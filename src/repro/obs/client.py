"""Blocking HTTP client for the observability front door.

Stdlib-only (``http.client``) helpers used by the ``repro tail`` CLI,
the server tests, and the CI ``obs-smoke`` driver.  Deliberately
synchronous: callers that drive deterministic comparisons submit one
query at a time and want the response before the next submit.

Every read is bounded: one-shot requests and ``/watch`` frames both
carry a read timeout, so a dead socket (server killed mid-stream, a
half-open connection) surfaces as :class:`WatchDisconnected` instead
of blocking forever.  :func:`reconnect_delays` provides the bounded
exponential backoff (with full jitter) the ``repro tail`` reconnect
loop sleeps on; an explicit ``Retry-After`` from a 429 overrides the
computed delay.
"""

from __future__ import annotations

import http.client
import json
import random
from typing import Any, Dict, Iterator, Optional, Tuple

from ..graphs import LabeledGraph

__all__ = [
    "ObsClient",
    "WatchDisconnected",
    "query_payload",
    "reconnect_delays",
]


def query_payload(graph: LabeledGraph) -> Dict[str, Any]:
    """The ``POST /query`` wire rendering of one query graph
    (:func:`repro.graphs.io.graph_to_json`'s payload shape)."""
    return {
        "name": graph.name,
        "labels": list(graph.labels),
        "edges": [
            [u, v, graph.edge_label(u, v)] for u, v in graph.edges()
        ],
    }


class WatchDisconnected(ConnectionError):
    """A ``/watch`` stream (or connect) ended abnormally.

    Carries what the reconnect loop needs to decide its next move:
    ``status`` (the HTTP status when the server answered with an
    error, else None) and ``retry_after`` (seconds parsed from a
    ``Retry-After`` header, else None — when present it overrides the
    backoff delay).
    """

    def __init__(
        self,
        reason: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.status = status
        self.retry_after = retry_after


def reconnect_delays(
    attempts: int = 0,
    base: float = 0.5,
    cap: float = 30.0,
    seed: Optional[int] = None,
) -> Iterator[float]:
    """Bounded exponential backoff delays with full jitter.

    Yields ``uniform(0, min(cap, base * 2**i))`` for attempt ``i`` —
    the classic full-jitter schedule that spreads reconnect storms
    while never sleeping longer than ``cap``.  ``attempts=0`` yields
    forever; pass ``seed`` for a deterministic schedule (tests).
    """
    if base <= 0:
        raise ValueError("base must be > 0")
    if cap < base:
        raise ValueError("cap must be >= base")
    rng = random.Random(seed)
    i = 0
    while attempts <= 0 or i < attempts:
        yield rng.uniform(0.0, min(cap, base * (2.0 ** i)))
        i += 1


def _retry_after_seconds(headers: Dict[str, str]) -> Optional[float]:
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:
        return None


class ObsClient:
    """One front-door endpoint, many one-shot requests.

    ``timeout`` bounds connects; ``read_timeout`` (default: same as
    ``timeout``) bounds every subsequent socket read, so no call on
    this client can block forever on a dead peer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        read_timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.read_timeout = (
            read_timeout if read_timeout is not None else timeout
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """One request; returns (status, parsed JSON, lowercase headers)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            if conn.sock is not None:
                conn.sock.settimeout(self.read_timeout)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else None
            return (
                response.status,
                parsed,
                {k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        status, payload, _ = self.request("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned {status}: {payload}")
        return payload

    def trace(self, ticket_id: int) -> Tuple[int, Optional[dict]]:
        status, payload, _ = self.request("GET", f"/trace/{ticket_id}")
        return status, payload

    def submit(
        self,
        dataset: str,
        graph: LabeledGraph,
        tenant: str = "public",
        options: Optional[dict] = None,
        budget_steps: Optional[int] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Submit one query and block until its response."""
        body: Dict[str, Any] = {
            "dataset": dataset,
            "tenant": tenant,
            "query": query_payload(graph),
        }
        if options:
            body["options"] = options
        if budget_steps is not None:
            body["budget_steps"] = budget_steps
        return self.request("POST", "/query", body)

    def watch(
        self,
        frames: int = 0,
        interval: float = 1.0,
        read_timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Consume ``/watch``, yielding one frame dict per interval.

        Each frame read is bounded by ``read_timeout`` (default: ten
        intervals — generous enough for scheduling slop, finite enough
        that a dead server surfaces).  Abnormal ends — connect
        failure, an error status (whose ``Retry-After`` is forwarded),
        a timed-out or torn read — raise :class:`WatchDisconnected`;
        a server-side clean end of stream just stops the iterator.
        """
        per_read = (
            read_timeout if read_timeout is not None
            else max(self.read_timeout, interval * 10)
        )
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                conn.request(
                    "GET", f"/watch?frames={frames}&interval={interval}"
                )
                if conn.sock is not None:
                    conn.sock.settimeout(per_read)
                response = conn.getresponse()
            except (TimeoutError, ConnectionError, OSError) as exc:
                raise WatchDisconnected(
                    f"cannot reach {self.host}:{self.port} ({exc})"
                ) from exc
            if response.status != 200:
                headers = {
                    k.lower(): v for k, v in response.getheaders()
                }
                raise WatchDisconnected(
                    f"/watch returned {response.status}",
                    status=response.status,
                    retry_after=_retry_after_seconds(headers),
                )
            while True:
                try:
                    line = response.readline()
                except (TimeoutError, ConnectionError, OSError) as exc:
                    raise WatchDisconnected(
                        f"stream read failed ({exc})"
                    ) from exc
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
