"""The Ψ-framework: parallel subgraph querying via racing variants.

Two frontends mirror the paper's §8:

* :class:`PsiNFV` — matching queries against one large stored graph;
  variants combine NFV algorithms (GraphQL, sPath, QuickSI, ...) with
  query rewritings.  Races run on steppable engines via the
  deterministic interleaved executor (or real threads on request).
* :class:`PsiFTV` — decision queries over an FTV index (Grapes/GGSX);
  the index's construction and filtering stages are untouched, and the
  race happens in the verification stage, per candidate graph, with one
  simulated thread per rewriting.

Both charge the configured :class:`OverheadModel` per race, honouring
the paper's remark that thread spawn/sync overhead bounds the useful
number of parallel variants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph
from ..indexing import FTVIndex, VerificationReport
from ..matching import (
    DEFAULT_MAX_EMBEDDINGS,
    Budget,
    GraphIndex,
    Matcher,
    make_matcher,
)
from ..rewriting import LabelStats, RewrittenQuery, make_rewriting
from .executors import (
    AttemptCost,
    OverheadModel,
    RaceOutcome,
    interleaved_race,
    race_from_costs,
    threaded_race,
)
from .variants import Variant

__all__ = ["PsiNFV", "PsiFTV", "PsiResult", "PsiFTVQueryResult"]


@dataclass
class PsiResult:
    """Result of one Ψ-NFV query.

    ``embeddings`` are translated back to the *original* query's node
    IDs, whatever rewriting won the race.
    """

    race: RaceOutcome
    embeddings: list[dict[int, int]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """Whether the winning attempt found an embedding."""
        return self.race.found

    @property
    def steps(self) -> int:
        """The race's execution time (winner + overhead)."""
        return self.race.steps

    @property
    def winner(self) -> Optional[Variant]:
        """The winning variant (None when the race was killed)."""
        return self.race.winner  # type: ignore[return-value]


class PsiNFV:
    """Ψ-framework over NFV matchers on a single stored graph.

    Parameters
    ----------
    graph:
        The stored graph.
    overhead:
        Race overhead model (defaults to free).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        overhead: OverheadModel = OverheadModel(),
    ) -> None:
        self.graph = graph
        self.overhead = overhead
        self.stats = LabelStats.of_graph(graph)
        self._matchers: dict[str, Matcher] = {}
        self._rewritten: dict[str, RewrittenQuery] = {}
        # the memo's owner is held strongly and compared by identity:
        # an id()-keyed memo would go stale when a dead query's address
        # is reused by a new one (CPython recycles addresses)
        self._rewritten_query: Optional[LabeledGraph] = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def matcher(self, name: str) -> Matcher:
        """Cached matcher instance by short name."""
        m = self._matchers.get(name)
        if m is None:
            m = make_matcher(name)
            self._matchers[name] = m
        return m

    def prepared(self, algorithm: str) -> GraphIndex:
        """Cached per-algorithm index of the stored graph.

        The memo is :data:`repro.caching.prepare_cache` itself (via
        :meth:`Matcher.prepare`), not a private dict: a second layer
        would answer reuse silently, leaving the cache's hit counters
        frozen at the warm-time misses — the "0 hits despite warm
        indexes" metrics lie the serving bench used to report.  One
        layer means every reuse registers as a hit and eviction has a
        single place to invalidate.
        """
        return self.matcher(algorithm).prepare(self.graph)

    def rewritten(
        self,
        query: LabeledGraph,
        rewriting: str,
        rng: Optional[random.Random] = None,
    ) -> RewrittenQuery:
        """Cached rewritten instance of ``query`` (per-query cache)."""
        if self._rewritten_query is not query:
            self._rewritten = {}
            self._rewritten_query = query
        rq = self._rewritten.get(rewriting)
        if rq is None:
            rq = make_rewriting(rewriting).apply(query, self.stats, rng)
            self._rewritten[rewriting] = rq
        return rq

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def run_variant(
        self,
        query: LabeledGraph,
        variant: Variant,
        budget: Optional[Budget] = None,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> AttemptCost:
        """Standalone (non-racing) attempt; used to build cost matrices."""
        rq = self.rewritten(query, variant.rewriting)
        outcome = self.matcher(variant.algorithm).run(
            self.prepared(variant.algorithm),
            rq.graph,
            budget=budget,
            max_embeddings=max_embeddings,
            count_only=count_only,
        )
        return AttemptCost(
            steps=outcome.steps, found=outcome.found, killed=outcome.killed
        )

    def race(
        self,
        query: LabeledGraph,
        variants: tuple[Variant, ...] | list[Variant],
        budget: Optional[Budget] = None,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
        executor: str = "interleaved",
    ) -> PsiResult:
        """Race ``variants`` on ``query``; first finisher wins.

        ``executor`` is ``"interleaved"`` (deterministic, default) or
        ``"threaded"`` (real threads; same answers, scheduler-dependent
        winner).
        """
        if not variants:
            raise ValueError("need at least one variant")
        rewritten = {
            v: self.rewritten(query, v.rewriting) for v in variants
        }

        def engine_for(v: Variant):
            return self.matcher(v.algorithm).engine(
                self.prepared(v.algorithm),
                rewritten[v].graph,
                max_embeddings=max_embeddings,
                count_only=count_only,
            )

        if executor == "interleaved":
            race = interleaved_race(
                {v: engine_for(v) for v in variants},
                budget=budget,
                overhead=self.overhead,
            )
        elif executor == "threaded":
            race = threaded_race(
                {v: (lambda v=v: engine_for(v)) for v in variants},
                budget=budget,
                overhead=self.overhead,
            )
        else:
            raise ValueError(f"unknown executor {executor!r}")
        embeddings: list[dict[int, int]] = []
        if race.winner is not None and race.outcome is not None:
            rq = rewritten[race.winner]  # type: ignore[index]
            embeddings = [
                rq.translate_embedding(e) for e in race.outcome.embeddings
            ]
        return PsiResult(race=race, embeddings=embeddings)


@dataclass
class PsiFTVQueryResult:
    """Ψ-FTV decision-query result over a dataset."""

    candidate_ids: list[int]
    reports: list[VerificationReport] = field(default_factory=list)
    races: list[RaceOutcome] = field(default_factory=list)

    @property
    def matching_ids(self) -> list[int]:
        """IDs of graphs verified to contain the query."""
        return [r.graph_id for r in self.reports if r.matched]


class PsiFTV:
    """Ψ-framework over an FTV index (paper §8, FTV mode).

    Index construction and filtering are the base method's own; for
    every candidate graph the verification races one simulated thread
    per rewriting, keeping the first finisher.

    The race is evaluated with *adaptive doubling*: every rewriting is
    tried under a small step cap, which doubles geometrically until some
    variant completes (then the winner is the cheapest completion) or
    the budget is reached.  This is semantically identical to an ideal
    parallel race — the winner and its step count match the
    per-variant minimum — while doing O(#variants × winner-cost) work
    instead of O(#variants × budget).
    """

    def __init__(
        self,
        index: FTVIndex,
        rewritings: tuple[str, ...] | list[str],
        overhead: OverheadModel = OverheadModel(),
        per_graph_stats: bool = True,
    ) -> None:
        if not rewritings:
            raise ValueError("need at least one rewriting")
        self.index = index
        self.rewritings = tuple(rewritings)
        self.overhead = overhead
        self.per_graph_stats = per_graph_stats
        self._collection_stats = LabelStats.of_collection(index.graphs)
        self._graph_stats: dict[int, LabelStats] = {}

    def _stats_for(self, graph_id: int) -> LabelStats:
        if not self.per_graph_stats:
            return self._collection_stats
        stats = self._graph_stats.get(graph_id)
        if stats is None:
            stats = LabelStats.of_graph(self.index.graphs[graph_id])
            self._graph_stats[graph_id] = stats
        return stats

    def rewritten_queries(
        self, query: LabeledGraph, graph_id: int
    ) -> dict[str, RewrittenQuery]:
        """The race's rewritten queries for one candidate graph."""
        stats = self._stats_for(graph_id)
        return {
            name: make_rewriting(name).apply(query, stats)
            for name in self.rewritings
        }

    def verify(
        self,
        query: LabeledGraph,
        graph_id: int,
        budget: Optional[Budget] = None,
    ) -> tuple[VerificationReport, RaceOutcome]:
        """Race the rewritings on one candidate graph's verification."""
        rewritten = self.rewritten_queries(query, graph_id)
        cap = budget.max_steps if budget and budget.max_steps else None
        over = self.overhead.cost(len(rewritten))

        # adaptive doubling (see class docstring)
        low = 1024
        costs: dict[str, AttemptCost] = {}
        while True:
            stage_cap = low if cap is None else min(low, cap)
            stage_budget = Budget(max_steps=stage_cap)
            completions: dict[str, AttemptCost] = {}
            for name, rq in rewritten.items():
                report = self.index.verify(rq.graph, graph_id, stage_budget)
                cost = AttemptCost(
                    steps=report.steps,
                    found=report.matched,
                    killed=report.killed,
                )
                costs[name] = cost
                if not cost.killed:
                    completions[name] = cost
            if completions:
                race = race_from_costs(
                    costs, budget_steps=cap, overhead=self.overhead
                )
                break
            if cap is not None and stage_cap >= cap:
                race = race_from_costs(
                    costs, budget_steps=cap, overhead=self.overhead
                )
                break
            low *= 4
        matched = race.found
        report = VerificationReport(
            graph_id=graph_id,
            matched=matched,
            steps=race.steps,
            killed=race.killed,
        )
        return report, race

    def query(
        self,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
    ) -> PsiFTVQueryResult:
        """Full decision query: base filtering + racing verification."""
        candidates = self.index.filter(query)
        result = PsiFTVQueryResult(candidate_ids=candidates)
        for gid in candidates:
            report, race = self.verify(query, gid, budget)
            result.reports.append(report)
            result.races.append(race)
        return result
