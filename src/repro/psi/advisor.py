"""Per-query variant selection — the paper's stated future work.

The paper closes: "Using machine learning models to predict which
version of our framework (algorithms, rewritings) to employ per query
is of high interest" (§9).  This module implements that extension as a
lightweight online learner:

* :func:`query_features` turns a query (plus stored-graph label
  statistics) into a small numeric vector — the characteristics the
  paper's analysis identifies as driving hardness: size, density,
  degree profile, label-frequency profile, path-likeness;
* :class:`VariantAdvisor` keeps a memory of past races (features +
  per-variant costs) and, for a new query, predicts the most promising
  ``k`` variants by distance-weighted nearest neighbours.  Racing only
  the predicted subset preserves most of the full race's time while
  cutting its total work — the resource the paper's overhead remark
  worries about.

The learner is deliberately dependency-free (pure-Python KNN): the
point is the *system interface* (observe races -> shrink future
races), not squeezing the last percent out of the predictor.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..graphs import LabeledGraph
from ..rewriting import LabelStats
from .variants import Variant

__all__ = ["query_features", "RaceObservation", "VariantAdvisor"]

_FEATURE_NAMES = (
    "vertices",
    "edges",
    "density",
    "avg_degree",
    "max_degree",
    "degree_stddev",
    "distinct_labels",
    "min_label_freq",
    "mean_label_freq",
    "path_likeness",
)


def query_features(
    query: LabeledGraph, stats: LabelStats
) -> tuple[float, ...]:
    """Numeric feature vector of a query against a stored graph.

    ``path_likeness`` is the fraction of query vertices with degree
    <= 2 — the paper's §6.2 explanation for why rewritings do nothing
    on wordnet is precisely that its queries are mostly paths.
    """
    n = query.order
    degrees = [query.degree(v) for v in query.vertices()]
    freqs = [
        stats.frequency(query.label(v)) for v in query.vertices()
    ]
    return (
        float(n),
        float(query.size),
        query.density(),
        statistics.mean(degrees),
        float(max(degrees)),
        statistics.pstdev(degrees) if n > 1 else 0.0,
        float(len(query.distinct_labels())),
        float(min(freqs)),
        statistics.mean(freqs),
        sum(1 for d in degrees if d <= 2) / n,
    )


@dataclass
class RaceObservation:
    """One completed race: query features and per-variant costs."""

    features: tuple[float, ...]
    costs: dict[Variant, int]

    def best_variant(self) -> Variant:
        """The cheapest variant of this observation."""
        return min(self.costs, key=lambda v: (self.costs[v], v))


@dataclass
class VariantAdvisor:
    """Distance-weighted KNN over past races.

    Parameters
    ----------
    variants:
        The full variant portfolio the advisor chooses from.
    neighbors:
        How many past races vote on a prediction.
    """

    variants: tuple[Variant, ...]
    neighbors: int = 5
    _history: list[RaceObservation] = field(default_factory=list)
    _scale: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("advisor needs a variant portfolio")
        if self.neighbors < 1:
            raise ValueError("neighbors must be >= 1")

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------

    def observe(
        self,
        features: Sequence[float],
        costs: Mapping[Variant, int],
    ) -> None:
        """Record a completed race (standalone costs per variant)."""
        unknown = set(costs) - set(self.variants)
        if unknown:
            raise ValueError(f"unknown variants {unknown}")
        self._history.append(
            RaceObservation(tuple(features), dict(costs))
        )
        self._rescale()

    def _rescale(self) -> None:
        """Per-feature scale (mean absolute value) for fair distances."""
        dims = len(_FEATURE_NAMES)
        sums = [0.0] * dims
        for obs in self._history:
            for i, x in enumerate(obs.features):
                sums[i] += abs(x)
        n = len(self._history)
        self._scale = [s / n if s > 0 else 1.0 for s in sums]

    @property
    def observations(self) -> int:
        """Number of recorded races."""
        return len(self._history)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def _distance(
        self, a: Sequence[float], b: Sequence[float]
    ) -> float:
        return math.sqrt(
            sum(
                ((x - y) / s) ** 2
                for x, y, s in zip(a, b, self._scale)
            )
        )

    def recommend(
        self, features: Sequence[float], k: int = 2
    ) -> tuple[Variant, ...]:
        """The ``k`` most promising variants for a new query.

        With no history, returns the first ``k`` portfolio variants (a
        full-race prefix).  Otherwise the nearest past races vote for
        their cheapest variants with inverse-distance weights.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self.variants))
        if not self._history:
            return self.variants[:k]
        ranked = sorted(
            self._history,
            key=lambda obs: self._distance(features, obs.features),
        )[: self.neighbors]
        scores: dict[Variant, float] = {v: 0.0 for v in self.variants}
        for obs in ranked:
            weight = 1.0 / (
                1.0 + self._distance(features, obs.features)
            )
            best = min(obs.costs.values())
            for variant, cost in obs.costs.items():
                # reward variants by closeness to the observed optimum
                scores[variant] += weight * best / max(cost, 1)
        order = sorted(
            self.variants, key=lambda v: (-scores[v], v)
        )
        return tuple(order[:k])

    def hit_rate(self, k: int = 2) -> float:
        """Leave-one-out rate at which the true winner is in the top-k.

        A self-diagnostic: how often would racing only the recommended
        subset have preserved the full race's winner?
        """
        if len(self._history) < 2:
            return float("nan")
        hits = 0
        history = list(self._history)
        for i, obs in enumerate(history):
            self._history = history[:i] + history[i + 1:]
            self._rescale()
            recommended = self.recommend(obs.features, k=k)
            if obs.best_variant() in recommended:
                hits += 1
        self._history = history
        self._rescale()
        return hits / len(history)
