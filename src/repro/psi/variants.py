"""Race variants: (algorithm, rewriting) pairs.

A Ψ-framework race runs one *variant* per simulated thread.  For the
FTV methods every variant uses the method's own VF2 verification and
varies only the rewriting; for the NFV methods variants may vary the
algorithm, the rewriting, or both (paper §8: "each using a different
well-known algorithm and/or a specific query rewriting").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Variant", "variants_from_spec"]


@dataclass(frozen=True, order=True)
class Variant:
    """One racing thread's configuration."""

    algorithm: str
    rewriting: str

    @property
    def label(self) -> str:
        """Display label, e.g. ``"GQL-ILF"``."""
        return f"{self.algorithm}-{self.rewriting}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def variants_from_spec(
    algorithms: tuple[str, ...] | list[str],
    rewritings: tuple[str, ...] | list[str],
) -> tuple[Variant, ...]:
    """Cross product of algorithms and rewritings, in given order.

    ``variants_from_spec(("GQL", "SPA"), ("Orig", "DND"))`` yields the
    paper's 4-thread Ψ([GQL/SPA]-[Or/DND]) configuration.
    """
    return tuple(
        Variant(a, r) for a in algorithms for r in rewritings
    )
