"""Race executors: three ways to run N matching attempts "in parallel".

The Ψ-framework's semantics (paper §8): N threads start simultaneously
on the same query, each with its own rewriting and/or algorithm; the
first to finish is the winner and the rest are killed.  Under ideal
parallelism the race's execution time is the winner's own time plus the
thread instantiation/synchronisation overhead the paper calls
"non-trivial".

Because CPython threads cannot actually overlap CPU-bound work, the
default executor **interleaves** the steppable engines round-robin in a
single thread: every engine advances one step per round, so the first
engine to complete is exactly the one with the fewest steps — the
deterministic realisation of "first past the post".  A real
``threading``-based executor is provided for completeness (its *answer*
is identical; its winner choice can differ under GIL scheduling), and a
pure cost-algebra executor (:func:`race_from_costs`) lets experiment
harnesses replay races from per-variant cost matrices without rerunning
searches.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..matching import Budget, MatchOutcome
from ..matching.engine import SearchEngine

__all__ = [
    "OverheadModel",
    "RaceOutcome",
    "RaceTask",
    "interleaved_race",
    "threaded_race",
    "race_from_costs",
    "AttemptCost",
    "DEFAULT_RACE_QUANTUM",
]

#: Steps each engine advances per scheduling turn.  The race's outcome
#: is provably independent of this value (see :func:`interleaved_race`);
#: larger quanta only cut Python-level context switches.
DEFAULT_RACE_QUANTUM = 64


@dataclass(frozen=True)
class OverheadModel:
    """Cost of spawning/synchronising race threads, in steps.

    The paper observes that "the instantiation and synchronisation of
    many threads come with a non-trivial overhead, impacting the overall
    speedup" (§8) — this model makes that overhead an explicit,
    sweepable parameter (see the race-overhead ablation bench).
    """

    base_steps: int = 0
    per_variant_steps: int = 0

    def cost(self, num_variants: int) -> int:
        """Total overhead charged to a race of ``num_variants``."""
        return self.base_steps + self.per_variant_steps * num_variants

    @classmethod
    def free(cls) -> "OverheadModel":
        """Zero-overhead model (upper-bound speedups)."""
        return cls()


@dataclass
class RaceOutcome:
    """Result of one Ψ race.

    ``steps`` is the race's execution time: the winner's step count plus
    overhead (or budget + overhead when every variant was killed).
    ``work_steps`` is the *total* work all variants performed — the
    price of parallelism, reported for the efficiency ablations.
    """

    winner: Optional[object]
    outcome: Optional[MatchOutcome]
    steps: int
    found: bool
    killed: bool
    overhead_steps: int
    per_variant_steps: dict = field(default_factory=dict)

    @property
    def work_steps(self) -> int:
        """Total steps across all variants (the price of the race)."""
        return sum(self.per_variant_steps.values())


class RaceTask:
    """One race, advanced one quantum-round at a time.

    Semantically this is the 1-step round-robin race — the first engine
    to complete wins, ties resolved by mapping order (variant
    declaration order, the stable stand-in for "whichever thread the
    scheduler favours"), losers are killed, and every variant is
    subject to the same per-variant ``budget``.  The implementation
    advances each engine by a *quantum* of K steps per turn and
    reconstructs the exact 1-step outcome, trading Python context
    switches for K-times-larger work slices:

    * the winner is the engine with the minimum completion step count,
      ties by declaration order.  An engine still alive after a turn at
      step target T has consumed >= T steps, while any completion
      detected during that turn happened strictly below T — so the
      first turn with completions contains the global winner, and
      comparing the completions of that turn suffices;
    * losers are charged the steps they would have consumed under
      1-step round-robin at the moment the winner finished: the
      winner's count, plus one for variants declared before the winner
      (their turn in the final round precedes the winner's), capped at
      the budget.

    The outcome — winner, step counts, ``per_variant_steps`` — is
    therefore *identical* for every ``quantum`` value.

    One call to :meth:`round` executes exactly one turn, so a caller
    may interleave many races over a shared pool (the serving layer's
    dispatcher does) without changing any race's outcome — engines are
    generators and don't notice what runs between their turns.
    :func:`interleaved_race` is the run-to-completion wrapper.
    """

    def __init__(
        self,
        engines: Mapping[object, SearchEngine],
        budget: Optional[Budget] = None,
        overhead: OverheadModel = OverheadModel(),
        quantum: int = DEFAULT_RACE_QUANTUM,
    ) -> None:
        if not engines:
            raise ValueError("race needs at least one variant")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.keys = list(engines)
        self.position = {k: i for i, k in enumerate(self.keys)}
        self.alive: dict[object, SearchEngine] = dict(engines)
        self.consumed = {k: 0 for k in self.keys}
        self.cap = (
            budget.max_steps if budget and budget.max_steps else None
        )
        self.overhead = overhead
        self.quantum = quantum
        self.target = 0
        self.outcome: Optional[RaceOutcome] = None
        #: engine-steps advanced by the most recent round (schedulers
        #: charge actual work, not reconstructed per-variant bills)
        self.last_round_steps = 0

    @property
    def finished(self) -> bool:
        """Whether the race has produced its outcome."""
        return self.outcome is not None

    @property
    def width(self) -> int:
        """Simulated threads one round occupies (alive variants)."""
        return len(self.alive)

    def round(self) -> Optional[RaceOutcome]:
        """Advance every alive engine one quantum; finish if possible."""
        if self.outcome is not None:
            return self.outcome
        cap = self.cap
        self.target += self.quantum
        if cap is not None and self.target > cap:
            self.target = cap
        # (completion steps, declaration position, key, outcome)
        finished: list[tuple[int, int, object, MatchOutcome]] = []
        advanced = 0
        for key in self.keys:
            gen = self.alive.get(key)
            if gen is None:
                continue
            n = self.consumed[key]
            begin = n
            while n < self.target:
                try:
                    inc = next(gen)
                except StopIteration as stop:
                    outcome = stop.value or MatchOutcome()
                    finished.append((n, self.position[key], key, outcome))
                    del self.alive[key]
                    break
                n += 1 if inc is None else inc
            self.consumed[key] = n
            advanced += n - begin
            if key in self.alive and cap is not None and n >= cap:
                gen.close()
                del self.alive[key]
        self.last_round_steps = advanced
        over = self.overhead.cost(len(self.keys))
        if finished:
            finished.sort(key=lambda f: (f[0], f[1]))
            won, won_pos, key, outcome = finished[0]
            outcome.steps = won
            per_variant = {}
            for k in self.keys:
                charged = won + (1 if self.position[k] < won_pos else 0)
                if cap is not None and charged > cap:
                    charged = cap
                per_variant[k] = charged
            self.close()
            self.outcome = RaceOutcome(
                winner=key,
                outcome=outcome,
                steps=won + over,
                found=outcome.found,
                killed=False,
                overhead_steps=over,
                per_variant_steps=per_variant,
            )
        elif not self.alive:
            # every variant hit the cap: the race is killed at the budget
            assert cap is not None
            self.outcome = RaceOutcome(
                winner=None,
                outcome=None,
                steps=cap + over,
                found=False,
                killed=True,
                overhead_steps=over,
                per_variant_steps={k: cap for k in self.keys},
            )
        return self.outcome

    def run_to_completion(self) -> RaceOutcome:
        """Drive rounds until the race resolves."""
        try:
            while self.outcome is None:
                self.round()
        finally:
            # an engine that raised mid-round must not leak the rest
            self.close()
        return self.outcome

    def close(self) -> None:
        """Close any still-alive engines (kill the losers)."""
        for gen in self.alive.values():
            gen.close()
        self.alive.clear()


def interleaved_race(
    engines: Mapping[object, SearchEngine],
    budget: Optional[Budget] = None,
    overhead: OverheadModel = OverheadModel(),
    quantum: int = DEFAULT_RACE_QUANTUM,
) -> RaceOutcome:
    """Deterministic race: round-robin ``quantum`` steps per engine turn.

    The run-to-completion form of :class:`RaceTask` — see its docstring
    for the winner/charge reconstruction argument.
    """
    return RaceTask(
        engines, budget=budget, overhead=overhead, quantum=quantum
    ).run_to_completion()


def threaded_race(
    engine_factories: Mapping[object, Callable[[], SearchEngine]],
    budget: Optional[Budget] = None,
    overhead: OverheadModel = OverheadModel(),
    check_every: int = 256,
) -> RaceOutcome:
    """Real ``threading`` race with cooperative cancellation.

    Each thread drives its engine and checks a shared stop event every
    ``check_every`` steps; the first thread to complete publishes its
    result and stops the rest.  Functionally equivalent to
    :func:`interleaved_race` (same answers); the winner identity and
    step accounting can differ under OS/GIL scheduling, which is why the
    deterministic executor is the default everywhere results are
    reported.
    """
    if not engine_factories:
        raise ValueError("race needs at least one variant")
    stop = threading.Event()
    lock = threading.Lock()
    state: dict[str, object] = {"winner": None, "outcome": None}
    steps: dict[object, int] = {k: 0 for k in engine_factories}
    cap = budget.max_steps if budget and budget.max_steps else None

    def work(key: object, factory: Callable[[], SearchEngine]) -> None:
        gen = factory()
        count = 0
        next_check = check_every
        try:
            while True:
                try:
                    inc = next(gen)
                except StopIteration as stop_iter:
                    outcome = stop_iter.value or MatchOutcome()
                    outcome.steps = count
                    with lock:
                        steps[key] = count
                        if state["winner"] is None:
                            state["winner"] = key
                            state["outcome"] = outcome
                    stop.set()
                    return
                count += 1 if inc is None else inc
                if cap is not None and count >= cap:
                    count = cap
                    break
                if count >= next_check:
                    next_check = count + check_every
                    if stop.is_set():
                        break
        finally:
            gen.close()
            with lock:
                steps[key] = count

    threads = [
        threading.Thread(target=work, args=(k, f), daemon=True)
        for k, f in engine_factories.items()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    over = overhead.cost(len(threads))
    winner = state["winner"]
    if winner is None:
        return RaceOutcome(
            winner=None,
            outcome=None,
            steps=(cap if cap is not None else 0) + over,
            found=False,
            killed=cap is not None,
            overhead_steps=over,
            per_variant_steps=dict(steps),
        )
    outcome = state["outcome"]
    assert isinstance(outcome, MatchOutcome)
    return RaceOutcome(
        winner=winner,
        outcome=outcome,
        steps=outcome.steps + over,
        found=outcome.found,
        killed=False,
        overhead_steps=over,
        per_variant_steps=dict(steps),
    )


@dataclass(frozen=True)
class AttemptCost:
    """Measured cost of one variant's standalone attempt."""

    steps: int
    found: bool
    killed: bool


def race_from_costs(
    costs: Mapping[object, AttemptCost],
    budget_steps: Optional[int] = None,
    overhead: OverheadModel = OverheadModel(),
) -> RaceOutcome:
    """Replay a race from per-variant costs (the "simulated" executor).

    The winner is the variant with the fewest steps among those that
    *completed* (killed attempts never finish); ties break by mapping
    order.  Experiment harnesses use this to evaluate every Ψ variant
    set from a single per-variant cost matrix, exactly as the paper's
    speedup* metric is defined (§3.5).
    """
    if not costs:
        raise ValueError("race needs at least one variant")
    over = overhead.cost(len(costs))
    winner: Optional[object] = None
    best: Optional[AttemptCost] = None
    for key, cost in costs.items():
        if cost.killed:
            continue
        if best is None or cost.steps < best.steps:
            winner, best = key, cost
    per_variant = {
        k: min(c.steps, best.steps) if best is not None else c.steps
        for k, c in costs.items()
    }
    if best is None:
        cap = budget_steps if budget_steps is not None else max(
            c.steps for c in costs.values()
        )
        return RaceOutcome(
            winner=None,
            outcome=None,
            steps=cap + over,
            found=False,
            killed=True,
            overhead_steps=over,
            per_variant_steps=per_variant,
        )
    return RaceOutcome(
        winner=winner,
        outcome=None,
        steps=best.steps + over,
        found=best.found,
        killed=False,
        overhead_steps=over,
        per_variant_steps=per_variant,
    )
