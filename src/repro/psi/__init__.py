"""The Ψ-framework (Parallel Subgraph Isomorphism framework, paper §8)."""

from .advisor import RaceObservation, VariantAdvisor, query_features
from .executors import (
    AttemptCost,
    OverheadModel,
    RaceOutcome,
    RaceTask,
    interleaved_race,
    race_from_costs,
    threaded_race,
)
from .framework import PsiFTV, PsiFTVQueryResult, PsiNFV, PsiResult
from .variants import Variant, variants_from_spec

__all__ = [
    "RaceObservation",
    "VariantAdvisor",
    "query_features",
    "AttemptCost",
    "OverheadModel",
    "RaceOutcome",
    "RaceTask",
    "interleaved_race",
    "race_from_costs",
    "threaded_race",
    "PsiFTV",
    "PsiFTVQueryResult",
    "PsiNFV",
    "PsiResult",
    "Variant",
    "variants_from_spec",
]
