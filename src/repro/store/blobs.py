"""Content-addressed blobs with crash-safe writes (store layer 0).

Three properties the rest of the store builds on (see docs/STORE.md):

* **Content addressing** — a blob's address is a prefix of the SHA-256
  of its bytes, so identical payloads dedupe and a blob can never be
  "updated" in place: a new payload is a new address, and a manifest
  pins exactly the bytes it was written against.
* **Crash-safe publication** — every write goes temp file → flush →
  fsync → atomic rename (``os.replace``), so a reader sees either a
  complete file or no file.  A crash mid-write leaves only a
  ``.tmp-*`` file that readers ignore, which is what makes a partially
  written store indistinguishable from no store.
* **Verified reads** — :meth:`BlobStore.get` re-hashes every blob and
  checks length + full SHA-256 against the manifest's
  :class:`BlobRef` before the bytes reach a codec.  A mismatch raises
  :class:`BlobCorrupt`; the caller quarantines the file (moved into
  ``quarantine/``, never deleted — operators can autopsy it) and falls
  back to a rebuild.  Corrupt artifacts are never served.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "StoreError",
    "BlobMissing",
    "BlobCorrupt",
    "BlobRef",
    "BlobStore",
    "sha256_hex",
    "atomic_write_bytes",
    "is_tmp_file",
]

#: address length in hex chars (64 bits of the SHA-256 — collision
#: space is tiny per store, and the full digest is still verified)
ADDRESS_LEN = 16

#: temp-file prefix the atomic-write protocol uses; anything carrying
#: it is an unpublished write and is ignored by every reader
TMP_PREFIX = ".tmp-"

BLOB_SUFFIX = ".blob"


class StoreError(Exception):
    """Base of every store failure (missing, corrupt, version skew)."""


class BlobMissing(StoreError):
    """A manifest-referenced blob is not on disk (stale manifest or
    deleted blob)."""

    def __init__(self, address: str, path: str) -> None:
        super().__init__(f"blob {address} missing at {path}")
        self.address = address
        self.path = path


class BlobCorrupt(StoreError):
    """A blob's bytes do not match its manifest checksum (torn write,
    truncation, bit flip, or any other way disk can lie)."""

    def __init__(self, address: str, path: str, reason: str) -> None:
        super().__init__(f"blob {address} corrupt at {path}: {reason}")
        self.address = address
        self.path = path
        self.reason = reason


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def is_tmp_file(name: str) -> bool:
    """True for unpublished atomic-write leftovers (reader-invisible)."""
    return name.startswith(TMP_PREFIX)


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (persists the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str, data: bytes, *, fail_after: Optional[int] = None
) -> None:
    """Publish ``data`` at ``path`` crash-safely.

    Protocol: write to a same-directory ``.tmp-*`` file, flush, fsync,
    then ``os.replace`` onto the final name and fsync the directory.
    POSIX rename atomicity guarantees any concurrent or later reader
    sees either the old complete file or the new complete file.

    ``fail_after`` is the fault-injection hook (only tests and
    :class:`repro.service.faults.StoreFaultInjector` pass it): the
    write "crashes" after ``fail_after`` bytes of the temp file — the
    temp file is left behind and the rename never happens, which is
    exactly what a torn write under this protocol looks like.
    """
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(
        directory,
        f"{TMP_PREFIX}{os.path.basename(path)}.{os.getpid()}",
    )
    payload = data if fail_after is None else data[:fail_after]
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    if fail_after is not None:
        return  # simulated crash before publication: target untouched
    os.replace(tmp, path)
    _fsync_dir(directory)


@dataclass(frozen=True)
class BlobRef:
    """A manifest's pin of one blob: address + full digest + length."""

    address: str
    sha256: str
    length: int

    def as_dict(self) -> dict:
        return {
            "address": self.address,
            "sha256": self.sha256,
            "length": self.length,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BlobRef":
        try:
            return cls(
                address=str(doc["address"]),
                sha256=str(doc["sha256"]),
                length=int(doc["length"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed blob reference: {doc!r}") from exc


class BlobStore:
    """The ``blobs/`` + ``quarantine/`` directories of one store root."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.blobs_dir = os.path.join(self.root, "blobs")
        self.quarantine_dir = os.path.join(self.root, "quarantine")

    def ensure(self) -> None:
        os.makedirs(self.blobs_dir, exist_ok=True)

    def path_for(self, address: str) -> str:
        return os.path.join(self.blobs_dir, address + BLOB_SUFFIX)

    # -- writes -------------------------------------------------------
    def put(
        self, data: bytes, *, fail_after: Optional[int] = None
    ) -> BlobRef:
        """Store ``data`` under its content address (idempotent).

        An existing file at the address is re-verified rather than
        trusted: a corrupt leftover (e.g. a previously quarantine-worthy
        blob restored by an operator) is overwritten with good bytes.
        """
        digest = sha256_hex(data)
        ref = BlobRef(
            address=digest[:ADDRESS_LEN], sha256=digest, length=len(data)
        )
        self.ensure()
        path = self.path_for(ref.address)
        if os.path.exists(path):
            try:
                with open(path, "rb") as fh:
                    if sha256_hex(fh.read()) == digest:
                        return ref
            except OSError:
                pass
        atomic_write_bytes(path, data, fail_after=fail_after)
        return ref

    # -- verified reads -----------------------------------------------
    def get(self, ref: BlobRef) -> bytes:
        """The blob's bytes, verified against ``ref`` before return."""
        path = self.path_for(ref.address)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            raise BlobMissing(ref.address, path) from None
        if len(data) != ref.length:
            raise BlobCorrupt(
                ref.address,
                path,
                f"length {len(data)} != {ref.length} (torn/truncated)",
            )
        digest = sha256_hex(data)
        if digest != ref.sha256:
            raise BlobCorrupt(
                ref.address, path, "sha256 mismatch (bit rot?)"
            )
        return data

    # -- quarantine ----------------------------------------------------
    def quarantine(self, address: str) -> Optional[str]:
        """Move a blob aside (evidence preserved); None if not on disk."""
        src = self.path_for(address)
        if not os.path.exists(src):
            return None
        os.makedirs(self.quarantine_dir, exist_ok=True)
        n = 0
        while True:
            dst = os.path.join(
                self.quarantine_dir, f"{address}{BLOB_SUFFIX}.{n}"
            )
            if not os.path.exists(dst):
                break
            n += 1
        os.replace(src, dst)
        return dst

    def quarantine_file(self, path: str, name: str) -> Optional[str]:
        """Quarantine an arbitrary store file (e.g. a bad manifest)."""
        if not os.path.exists(path):
            return None
        os.makedirs(self.quarantine_dir, exist_ok=True)
        n = 0
        while True:
            dst = os.path.join(self.quarantine_dir, f"{name}.{n}")
            if not os.path.exists(dst):
                break
            n += 1
        os.replace(path, dst)
        return dst

    # -- introspection -------------------------------------------------
    def addresses(self) -> list[str]:
        """Published blob addresses on disk, sorted (tmp files ignored)."""
        try:
            names = os.listdir(self.blobs_dir)
        except FileNotFoundError:
            return []
        return sorted(
            name[: -len(BLOB_SUFFIX)]
            for name in names
            if name.endswith(BLOB_SUFFIX) and not is_tmp_file(name)
        )
