"""The store manifest: one versioned, self-checksummed root document.

The manifest is the store's single source of truth — the only file a
reader trusts before verifying anything else.  It is written last
(after every blob it references is published) through the same atomic
temp → fsync → rename protocol as blobs, so a store either has a
complete manifest pinning complete blobs or is treated as absent.

Defenses, in verification order:

1. **Parseability** — a torn or garbled manifest fails JSON parsing →
   :class:`ManifestError` (the store reads as absent after quarantine).
2. **Version** — a manifest written by a different format generation
   raises :class:`StoreVersionSkew`; the whole store is refused (never
   half-interpreted) and serving falls back to a fresh warm build.
3. **Self-checksum** — the body carries the SHA-256 of its own
   canonical JSON rendering.  A stale or hand-edited manifest (blob
   refs swapped, datasets removed) fails this check even though it
   parses, closing the "old manifest + new blobs" confusion window.

Blob-level staleness (a manifest whose checksum verifies but that
references a blob no longer on disk) is detected one layer down, at
:meth:`repro.store.blobs.BlobStore.get` time, as :class:`BlobMissing`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .blobs import StoreError, atomic_write_bytes, sha256_hex

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestError",
    "StoreMissing",
    "StoreVersionSkew",
    "load_manifest",
    "write_manifest",
    "manifest_path",
]

MANIFEST_NAME = "MANIFEST.json"

#: current manifest format generation; bump on incompatible layout
#: changes so an old reader refuses a new store loudly (and vice versa)
MANIFEST_VERSION = 1


class ManifestError(StoreError):
    """The manifest is unreadable, unparseable, or fails its checksum."""


class StoreMissing(StoreError):
    """No manifest at the store root (empty dir, or torn first write)."""


class StoreVersionSkew(ManifestError):
    """Manifest written by a different format generation."""

    def __init__(self, found: object, expected: int) -> None:
        super().__init__(
            f"manifest version {found!r} != supported {expected}"
        )
        self.found = found
        self.expected = expected


def _canonical(doc: dict) -> bytes:
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def manifest_path(root: str) -> str:
    return os.path.join(str(root), MANIFEST_NAME)


@dataclass
class Manifest:
    """Decoded manifest: layout + per-dataset records.

    ``layout`` describes the catalog shape the artifacts were warmed
    under (``sharded``, ``num_shards``, ``assignment``, ``replicas``);
    a reader only restores into a matching shape.  Each record in
    ``datasets`` carries the dataset's load configuration and the
    :class:`~repro.store.blobs.BlobRef` dicts of its graphs blob and
    warm-index blob(s).
    """

    epoch: int
    layout: dict
    datasets: dict = field(default_factory=dict)

    def body(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "epoch": self.epoch,
            "layout": self.layout,
            "datasets": self.datasets,
        }

    def encode(self) -> bytes:
        body = self.body()
        doc = dict(body)
        doc["checksum"] = sha256_hex(_canonical(body))
        return json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "Manifest":
        try:
            doc = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ManifestError(
                f"manifest unparseable (torn write?): {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ManifestError(
                f"manifest root must be an object, got {type(doc).__name__}"
            )
        version = doc.get("version")
        if version != MANIFEST_VERSION:
            raise StoreVersionSkew(version, MANIFEST_VERSION)
        checksum = doc.pop("checksum", None)
        if checksum != sha256_hex(_canonical(doc)):
            raise ManifestError(
                "manifest self-checksum mismatch (stale or edited)"
            )
        datasets = doc.get("datasets")
        layout = doc.get("layout")
        if not isinstance(datasets, dict) or not isinstance(layout, dict):
            raise ManifestError("manifest missing layout/datasets")
        return cls(
            epoch=int(doc.get("epoch", 0)),
            layout=layout,
            datasets=datasets,
        )


def write_manifest(
    root: str, manifest: Manifest, *, fail_after: int | None = None
) -> str:
    """Atomically publish ``manifest`` at the store root.

    ``fail_after`` simulates a crash mid-write (see
    :func:`repro.store.blobs.atomic_write_bytes`): the temp file is
    abandoned and any previously published manifest stays intact —
    the property that makes a torn store write recoverable.
    """
    path = manifest_path(root)
    os.makedirs(str(root), exist_ok=True)
    atomic_write_bytes(path, manifest.encode(), fail_after=fail_after)
    return path


def load_manifest(root: str) -> Manifest:
    """Read + fully verify the manifest (raises on every defect class)."""
    path = manifest_path(root)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise StoreMissing(f"no manifest at {path}") from None
    return Manifest.decode(data)
