"""StoreWriter: persist a warm catalog as checksummed blobs + manifest.

Write order is the crash-safety argument: every blob is published
(atomically, content-addressed) *before* the manifest that references
it, and the manifest itself is published last through the same atomic
rename.  At no point does a complete manifest reference an incomplete
blob, so a crash at any byte leaves either the previous store intact
or a pile of reader-invisible temp files — a partially written store
is indistinguishable from no store.

Epochs are monotone: re-warming into an existing store bumps the
manifest epoch (old blobs that are no longer referenced simply stay —
content addressing makes them harmless; ``repro warm`` reports them).
"""

from __future__ import annotations

from typing import Optional

from .blobs import BlobStore
from .codec import CODEC, encode_graphs, encode_index, index_method
from .manifest import (
    Manifest,
    StoreError,
    load_manifest,
    write_manifest,
)

__all__ = ["StoreWriter"]


class StoreWriter:
    """Serialize a warm ``DatasetCatalog``/``ShardedCatalog`` to disk.

    ``fail_manifest_after`` is the torn-write fault hook: the manifest
    write "crashes" after that many bytes (blobs are already
    published), proving the atomicity claim in tests and the
    corruption drill.
    """

    def __init__(
        self,
        root: str,
        *,
        fail_manifest_after: Optional[int] = None,
    ) -> None:
        self.root = str(root)
        self.blobs = BlobStore(self.root)
        self.fail_manifest_after = fail_manifest_after

    # ------------------------------------------------------------------
    def write_catalog(
        self, catalog, *, journal=None, journal_seq=None
    ) -> dict:
        """Persist every persistable dataset of ``catalog``.

        Accepts either catalog flavor; returns a JSON-ready summary
        (datasets written, blob count/bytes, epoch, skips).

        When a mutation ``journal`` (or an explicit ``journal_seq``
        high-water) rides along, the manifest's layout records the
        journal seq this checkpoint covers *before* it is published,
        and the journal is truncated only *after* the atomic manifest
        rename.  Replay skips records at or below the recorded seq, so
        every crash window is safe: before the rename the old manifest
        (with the old seq) still governs and the suffix replays; after
        the rename but before the truncate, the new seq already covers
        every journaled record and replay is a no-op; after the
        truncate there is nothing to replay.
        """
        # deferred: repro.service imports repro.store lazily, never at
        # module level, so this direction cannot cycle at import time
        from ..service.catalog import DatasetCatalog
        from ..service.sharding import ShardedCatalog

        if isinstance(catalog, ShardedCatalog):
            layout, datasets, skipped = self._sharded_records(catalog)
        elif isinstance(catalog, DatasetCatalog):
            layout, datasets, skipped = self._unsharded_records(catalog)
        else:
            raise TypeError(
                f"cannot persist {type(catalog).__name__}; expected "
                "DatasetCatalog or ShardedCatalog"
            )
        if journal is not None or journal_seq is not None:
            layout["journal_seq"] = (
                int(journal_seq)
                if journal_seq is not None
                else journal.tail_seq()
            )
        try:
            epoch = load_manifest(self.root).epoch + 1
        except StoreError:
            epoch = 0
        manifest = Manifest(
            epoch=epoch, layout=layout, datasets=datasets
        )
        path = write_manifest(
            self.root, manifest, fail_after=self.fail_manifest_after
        )
        if journal is not None:
            # manifest is durable; the journaled prefix it covers is
            # now redundant and the journal restarts empty
            journal.checkpoint()
        written = self.blobs.addresses()
        referenced = {
            ref["address"]
            for rec in datasets.values()
            for ref in (
                [rec["graphs"]] + list(rec["indexes"].values())
            )
        }
        summary = {
            "path": path,
            "epoch": epoch,
            "datasets": sorted(datasets),
            "skipped_registered": skipped,
            "blobs": len(written),
            "unreferenced_blobs": sorted(
                set(written) - referenced
            ),
            "bytes": sum(
                ref["length"]
                for rec in datasets.values()
                for ref in (
                    [rec["graphs"]] + list(rec["indexes"].values())
                )
            ),
        }
        if "journal_seq" in layout:
            summary["journal_seq"] = layout["journal_seq"]
        return summary

    # ------------------------------------------------------------------
    def _unsharded_records(self, catalog) -> tuple[dict, dict, list]:
        layout = {"sharded": False}
        datasets: dict = {}
        skipped: list[str] = []
        for name in catalog.datasets():
            entry = catalog.get(name)
            if entry.load_config and entry.load_config[0] == "registered":
                # registered entries have no named builder to fall back
                # to on corruption; only load()-originated datasets are
                # restorable, so only they are persisted
                skipped.append(name)
                continue
            scale, algorithms, ftv_method, max_path_length = (
                entry.load_config
            )
            rec = self._dataset_record(
                kind=entry.kind,
                scale=scale,
                algorithms=algorithms,
                ftv_method=ftv_method,
                max_path_length=max_path_length,
                graphs=entry.graphs,
            )
            if entry.kind == "ftv":
                rec["indexes"]["*"] = self.blobs.put(
                    encode_index(entry.ftv_index)
                ).as_dict()
                rec["ftv_method"] = index_method(entry.ftv_index)
                if entry.tombstones:
                    # duplicated outside the index blob so a corrupt
                    # blob's in-process rebuild can still re-retire
                    # the removed ids instead of resurrecting them
                    rec["tombstones"] = sorted(entry.tombstones)
            datasets[name] = rec
        return layout, datasets, skipped

    def _sharded_records(self, catalog) -> tuple[dict, dict, list]:
        layout = {
            "sharded": True,
            "num_shards": catalog.num_shards,
            "assignment": catalog.assignment_strategy,
            "replicas": catalog.replicas,
        }
        datasets: dict = {}
        for name in catalog.datasets():
            entry = catalog.get(name)
            scale, algorithms, ftv_method, max_path_length = (
                entry._register_config
            )
            rec = self._dataset_record(
                kind=entry.kind,
                scale=scale,
                algorithms=algorithms,
                ftv_method=ftv_method,
                max_path_length=max_path_length,
                graphs=entry.graphs,
            )
            rec["assignment"] = [
                list(ids) for ids in entry.assignment
            ]
            rec["home_shard"] = entry.home_shard
            if getattr(entry, "tombstones", None):
                # collection state, not index state: the global ids a
                # remove_graph retired (per-shard blobs carry only
                # their local projections)
                rec["tombstones"] = sorted(entry.tombstones)
            if entry.kind == "ftv":
                for shard in entry.involved_shards():
                    sub = entry.shard_entry(shard)
                    rec["indexes"][str(shard)] = self.blobs.put(
                        encode_index(sub.ftv_index)
                    ).as_dict()
            datasets[name] = rec
        return layout, datasets, []

    def _dataset_record(
        self, *, kind, scale, algorithms, ftv_method,
        max_path_length, graphs,
    ) -> dict:
        graphs_ref = self.blobs.put(encode_graphs(graphs))
        return {
            "kind": kind,
            "scale": scale,
            "algorithms": list(algorithms),
            "ftv_method": ftv_method,
            "max_path_length": max_path_length,
            "codec": CODEC,
            "graphs": {
                **graphs_ref.as_dict(), "count": len(graphs),
            },
            "indexes": {},
        }
