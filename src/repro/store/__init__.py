"""Versioned, content-addressed on-disk store for warmed artifacts.

The catalog invariant (``repro.service.catalog``) says the same name,
scale, and configuration always produce the same frozen graphs and
warm indexes — so a replica could always rebuild from scratch.  What
it cannot do from scratch is boot *fast*: warming pays the full
path-census DFS over every stored graph.  This package trades that
for O(read): ``repro warm --store DIR`` persists the warm state once,
and any later process restores it digest-identical to a fresh build.

Layering (each module trusts only the ones below it):

* :mod:`~repro.store.blobs` — content-addressed blobs, atomic writes,
  verified reads, quarantine;
* :mod:`~repro.store.manifest` — the versioned, self-checksummed root
  document;
* :mod:`~repro.store.codec` — graphs / warm-trie payload formats;
* :mod:`~repro.store.writer` — :class:`StoreWriter` (catalog → disk);
* :mod:`~repro.store.reader` — :class:`StoreReader` (disk → catalog,
  with the corruption taxonomy's detection + recovery matrix).

Fault injection for all of it lives with the other chaos tooling as
:class:`repro.service.faults.StoreFaultInjector`.
"""

from .blobs import (
    BlobCorrupt,
    BlobMissing,
    BlobRef,
    BlobStore,
    StoreError,
    atomic_write_bytes,
    sha256_hex,
)
from .codec import CODEC, CodecError
from .journal import (
    JOURNAL_NAME,
    JournalCorrupt,
    JournalCrash,
    JournalError,
    JournalRecord,
    MutationJournal,
    RecoveryReport,
)
from .manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    Manifest,
    ManifestError,
    StoreMissing,
    StoreVersionSkew,
    load_manifest,
    write_manifest,
)
from .reader import StoreReader
from .writer import StoreWriter

__all__ = [
    "BlobCorrupt",
    "BlobMissing",
    "BlobRef",
    "BlobStore",
    "CODEC",
    "CodecError",
    "JOURNAL_NAME",
    "JournalCorrupt",
    "JournalCrash",
    "JournalError",
    "JournalRecord",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestError",
    "MutationJournal",
    "RecoveryReport",
    "StoreError",
    "StoreMissing",
    "StoreReader",
    "StoreVersionSkew",
    "StoreWriter",
    "atomic_write_bytes",
    "load_manifest",
    "sha256_hex",
    "write_manifest",
]
