"""Write-ahead mutation journal (store layer 3).

The PR 8 store makes *warm state* durable; this module makes *changes*
to that state durable.  Every accepted ``add_graph`` / ``remove_graph``
mutation is appended here **before** the service acknowledges it, so a
crash at any point loses nothing: cold boot restores the last store
checkpoint and replays the journal's surviving suffix.

Record format (one line per mutation, self-delimiting)::

    RJL1 <length:08x> <sha256[:16]> <payload-json>\\n

``length`` is the byte length of the JSON payload, the checksum is the
first 16 hex chars of the payload's SHA-256, and the trailing newline
closes the frame.  Self-delimiting framing is what makes a torn tail
recoverable *by construction*: the first record whose header, length,
checksum, or terminator does not verify marks the end of the valid
prefix — everything after it is moved into ``quarantine/`` (evidence
preserved, :class:`~repro.store.blobs.BlobStore` discipline) and the
file is truncated back to the last record that fsync provably
published.

Append protocol: open append-only, write the full frame, flush, fsync.
There is no rename step — an append either lands wholly (the common
case once fsync returns) or leaves a torn tail that
:meth:`MutationJournal.recover` truncates away.  The ``fail_after``
hook simulates a crash mid-append (some bytes reach the file, the
process "dies" before acknowledging), which is the
kill-between-append-and-ack drill of ``tests/test_journal.py``.

Replay discipline (what makes replay *idempotent*):

* records carry a monotone ``seq`` — appliers keep a high-water mark
  and skip any record at or below it, so replaying twice ≡ once;
* records carry the store ``epoch`` they were appended under — a
  checkpoint (:meth:`repro.store.StoreWriter.write_catalog`) folds the
  journal into the manifest and truncates it, and replay skips records
  stamped with a pre-checkpoint epoch should a stale journal survive;
* a record whose ``seq`` repeats the previous one verbatim is a
  duplicated append (retried ack): detected, counted, skipped;
* a record whose ``seq`` goes *backwards* is reordering corruption —
  the journal is append-only, so the violating suffix is quarantined.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .blobs import BlobStore, StoreError, sha256_hex

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_MAGIC",
    "JournalError",
    "JournalCorrupt",
    "JournalCrash",
    "JournalRecord",
    "RecoveryReport",
    "MutationJournal",
    "encode_record",
]

JOURNAL_NAME = "JOURNAL.log"

#: frame magic — bumping it is a format generation change
JOURNAL_MAGIC = "RJL1"

#: header layout: "RJL1 " + 8 hex length + " " + 16 hex checksum + " "
_HEADER_LEN = len(JOURNAL_MAGIC) + 1 + 8 + 1 + 16 + 1

#: digest prefix length pinned by the frame format
_SUM_LEN = 16

MUTATION_OPS = ("add_graph", "remove_graph")


class JournalError(StoreError):
    """Base of journal failures."""


class JournalCorrupt(JournalError):
    """A record frame failed verification (strict-read entry point)."""


class JournalCrash(JournalError):
    """Raised by the ``fail_after`` crash-injection hook: the append
    wrote a torn tail and the simulated process died before the ack."""


@dataclass(frozen=True)
class JournalRecord:
    """One durable mutation.

    ``graph_json`` is the full :func:`repro.graphs.io.graph_to_json`
    payload for adds (replay must reconstruct the graph without the
    workload generator) and ``None`` for removes.  ``shard`` pins the
    placement decision for sharded layouts so replay reproduces it
    regardless of load state at replay time (``-1`` = unsharded).
    """

    seq: int
    epoch: int
    op: str
    dataset: str
    graph_id: int
    shard: int = -1
    graph_json: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in MUTATION_OPS:
            raise ValueError(
                f"unknown mutation op {self.op!r}; known: {MUTATION_OPS}"
            )
        if self.seq < 0:
            raise ValueError("journal seq must be >= 0")

    def payload(self) -> dict:
        doc = {
            "seq": self.seq,
            "epoch": self.epoch,
            "op": self.op,
            "dataset": self.dataset,
            "graph_id": self.graph_id,
            "shard": self.shard,
        }
        if self.graph_json is not None:
            doc["graph"] = self.graph_json
        return doc

    @classmethod
    def from_payload(cls, doc: dict) -> "JournalRecord":
        try:
            return cls(
                seq=int(doc["seq"]),
                epoch=int(doc["epoch"]),
                op=str(doc["op"]),
                dataset=str(doc["dataset"]),
                graph_id=int(doc["graph_id"]),
                shard=int(doc.get("shard", -1)),
                graph_json=doc.get("graph"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalCorrupt(
                f"malformed journal payload: {doc!r}"
            ) from exc


def encode_record(record: JournalRecord) -> bytes:
    """One self-delimiting frame for ``record``."""
    payload = json.dumps(
        record.payload(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    header = (
        f"{JOURNAL_MAGIC} {len(payload):08x} "
        f"{sha256_hex(payload)[:_SUM_LEN]} "
    ).encode("ascii")
    return header + payload + b"\n"


def _decode_frame(
    data: bytes, offset: int
) -> tuple[JournalRecord, int]:
    """Decode the frame at ``offset``; raises :class:`JournalCorrupt`
    on any framing/integrity defect (including a torn tail)."""
    head = data[offset : offset + _HEADER_LEN]
    if len(head) < _HEADER_LEN:
        raise JournalCorrupt("torn header at end of journal")
    text = head.decode("ascii", errors="replace")
    magic, length_hex, checksum = (
        text[: len(JOURNAL_MAGIC)],
        text[len(JOURNAL_MAGIC) + 1 : len(JOURNAL_MAGIC) + 9],
        text[len(JOURNAL_MAGIC) + 10 : len(JOURNAL_MAGIC) + 26],
    )
    if magic != JOURNAL_MAGIC or text[len(JOURNAL_MAGIC)] != " ":
        raise JournalCorrupt(f"bad frame magic {magic!r}")
    try:
        length = int(length_hex, 16)
    except ValueError as exc:
        raise JournalCorrupt(f"bad length field {length_hex!r}") from exc
    start = offset + _HEADER_LEN
    payload = data[start : start + length]
    if len(payload) < length:
        raise JournalCorrupt("torn payload at end of journal")
    if data[start + length : start + length + 1] != b"\n":
        raise JournalCorrupt("missing frame terminator")
    if sha256_hex(payload)[:_SUM_LEN] != checksum:
        raise JournalCorrupt("payload checksum mismatch")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalCorrupt("payload is not valid JSON") from exc
    return JournalRecord.from_payload(doc), start + length + 1


@dataclass
class RecoveryReport:
    """What one :meth:`MutationJournal.recover` pass found and fixed."""

    #: valid records in append order, duplicates already dropped
    records: list = field(default_factory=list)
    #: consecutive same-``seq`` re-appends skipped (retried acks)
    duplicates_dropped: int = 0
    #: bytes cut off the tail (torn/corrupt/reordered suffix)
    truncated_bytes: int = 0
    #: quarantine file holding the cut suffix, if any was cut
    quarantined: Optional[str] = None
    #: defect classes seen, in detection order (docs/STORE.md matrix)
    detected: list = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "records": len(self.records),
            "duplicates_dropped": self.duplicates_dropped,
            "truncated_bytes": self.truncated_bytes,
            "quarantined": self.quarantined,
            "detected": list(self.detected),
        }


class MutationJournal:
    """The append-only mutation log of one store root.

    Lives beside the manifest (``<root>/JOURNAL.log``); an absent file
    is an empty journal.  All reads verify every frame; all writes are
    append → flush → fsync before the caller may acknowledge.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.path = os.path.join(self.root, JOURNAL_NAME)
        #: appends performed through this handle (not the on-disk count)
        self.appended = 0
        #: checkpoints (truncations) performed through this handle
        self.checkpoints = 0

    # -- writes --------------------------------------------------------

    def append(
        self, record: JournalRecord, *, fail_after: Optional[int] = None
    ) -> int:
        """Durably append ``record``; returns its ``seq``.

        ``fail_after`` simulates a crash mid-append: only that many
        bytes of the frame reach the file (flushed and fsynced, so the
        torn tail really is on disk) and :class:`JournalCrash` is
        raised *before* the caller can acknowledge the mutation.
        """
        os.makedirs(self.root, exist_ok=True)
        frame = encode_record(record)
        payload = frame if fail_after is None else frame[:fail_after]
        with open(self.path, "ab") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        if fail_after is not None:
            raise JournalCrash(
                f"simulated crash after {fail_after} bytes of seq "
                f"{record.seq}"
            )
        self.appended += 1
        return record.seq

    def checkpoint(self) -> int:
        """Truncate the journal (its records are now in the manifest).

        Called by :meth:`repro.store.StoreWriter.write_catalog` after a
        successful manifest publication: every journaled mutation is
        reflected in the checkpointed state, so the log starts over.
        Returns the number of bytes released.
        """
        try:
            released = os.path.getsize(self.path)
        except OSError:
            released = 0
        if released:
            with open(self.path, "rb+") as fh:
                fh.truncate(0)
                fh.flush()
                os.fsync(fh.fileno())
        self.checkpoints += 1
        return released

    # -- reads ---------------------------------------------------------

    def _raw(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def records(self) -> list[JournalRecord]:
        """Strict scan: every frame must verify, order must be valid.

        Raises :class:`JournalCorrupt` on the first defect — use
        :meth:`recover` to salvage the valid prefix instead.
        """
        data = self._raw()
        out: list[JournalRecord] = []
        offset = 0
        while offset < len(data):
            record, offset = _decode_frame(data, offset)
            if out and record.seq <= out[-1].seq:
                raise JournalCorrupt(
                    f"seq {record.seq} after {out[-1].seq} "
                    "(duplicate or reordered record)"
                )
            out.append(record)
        return out

    def pending_count(self) -> int:
        """Records currently salvageable from disk (journal lag)."""
        return len(self.recover(dry_run=True).records)

    def tail_seq(self) -> int:
        """Highest valid seq on disk, or ``-1`` for an empty journal."""
        records = self.recover(dry_run=True).records
        return records[-1].seq if records else -1

    def recover(self, *, dry_run: bool = False) -> RecoveryReport:
        """Salvage the valid record prefix, repairing the file.

        Walks frames until the first defect.  A duplicated record
        (same ``seq`` as its predecessor, a retried append) is skipped
        and the walk continues — the bytes are valid, only redundant.
        Anything else — torn tail, checksum mismatch, reordered seq —
        ends the valid prefix: the offending suffix is moved to
        ``quarantine/`` and the file truncated to the last valid frame
        (unless ``dry_run``).  Recovery is idempotent: a second pass
        over a repaired journal finds nothing to fix.
        """
        data = self._raw()
        report = RecoveryReport()
        offset = 0
        valid_end = 0
        while offset < len(data):
            try:
                record, nxt = _decode_frame(data, offset)
            except JournalCorrupt as exc:
                self._flag(report, f"corrupt_frame: {exc}")
                break
            if report.records and record.seq == report.records[-1].seq:
                # a retried append: same mutation landed twice —
                # state-preserving, so skip it and keep scanning
                if record.payload() != report.records[-1].payload():
                    self._flag(report, "duplicate_seq_conflict")
                    break
                report.duplicates_dropped += 1
                if "duplicate_record" not in report.detected:
                    report.detected.append("duplicate_record")
                offset = nxt
                valid_end = nxt
                continue
            if report.records and record.seq < report.records[-1].seq:
                self._flag(report, "reordered_records")
                break
            report.records.append(record)
            offset = nxt
            valid_end = nxt
        tail = len(data) - valid_end
        if tail > 0:
            report.truncated_bytes = tail
            if not dry_run:
                report.quarantined = self._quarantine_tail(
                    data[valid_end:]
                )
                with open(self.path, "rb+") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
        return report

    @staticmethod
    def _flag(report: RecoveryReport, kind: str) -> None:
        if kind not in report.detected:
            report.detected.append(kind)

    def _quarantine_tail(self, tail: bytes) -> str:
        """Preserve the cut suffix as evidence (never deleted)."""
        store = BlobStore(self.root)
        os.makedirs(store.quarantine_dir, exist_ok=True)
        n = 0
        while True:
            dst = os.path.join(
                store.quarantine_dir, f"{JOURNAL_NAME}.tail.{n}"
            )
            if not os.path.exists(dst):
                break
            n += 1
        with open(dst, "wb") as fh:
            fh.write(tail)
            fh.flush()
            os.fsync(fh.fileno())
        return dst

    def as_metrics(self) -> dict:
        return {
            "path": self.path,
            "appended": self.appended,
            "checkpoints": self.checkpoints,
        }
