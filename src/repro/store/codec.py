"""Blob payload codecs: frozen graphs and warm FTV indexes ↔ bytes.

Everything is canonical JSON (sorted keys, no float ambiguity — the
payloads are ints and strings only) compressed with zlib, so the same
warm state always encodes to the same bytes and therefore the same
content address.  That determinism is what makes "same config → same
store" testable.

Graphs round-trip through :func:`repro.graphs.io.graph_to_json`, the
faithful shape (edge labels and int/str label types preserved).

Warm FTV indexes serialize as their trie's posting dump: a sorted list
of ``[coded path, [[graph_id, count, [locations...]], ...]]`` rows.
Restoring re-inserts the rows through the **raw** ``PathTrie.insert``
(see :meth:`repro.indexing.base.FTVIndex._restore`) — crucially *not*
through ``SuffixTrie.insert``, whose suffix expansion would double
count rows the dump already enumerates.  Label codes are not stored:
the :class:`~repro.indexing.features.LabelInterner` assigns codes
deterministically from the sorted label set of the restored graphs,
so a coded dump made against the same graphs decodes against the
freshly derived interner bit-for-bit.
"""

from __future__ import annotations

import json
import zlib

from ..graphs.io import graph_from_json, graph_to_json
from .blobs import StoreError

__all__ = [
    "CODEC",
    "CodecError",
    "encode_graphs",
    "decode_graphs",
    "encode_index",
    "decode_index",
    "dump_postings",
]

#: payload format tag, embedded in every blob for self-description
CODEC = "json+zlib/1"


class CodecError(StoreError):
    """A checksummed blob failed to decode (treated as corruption)."""


def _pack(obj: dict) -> bytes:
    raw = json.dumps(
        obj, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return zlib.compress(raw, 6)


def _unpack(data: bytes, kind: str) -> dict:
    try:
        obj = json.loads(zlib.decompress(data).decode("utf-8"))
    except (zlib.error, ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"{kind} blob undecodable: {exc}") from exc
    if not isinstance(obj, dict) or obj.get("kind") != kind:
        raise CodecError(
            f"blob is not a {kind} payload: "
            f"{obj.get('kind') if isinstance(obj, dict) else type(obj)}"
        )
    if obj.get("codec") != CODEC:
        raise CodecError(f"unknown payload codec {obj.get('codec')!r}")
    return obj


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------

def encode_graphs(graphs) -> bytes:
    return _pack({
        "kind": "graphs",
        "codec": CODEC,
        "graphs": [graph_to_json(g) for g in graphs],
    })


def decode_graphs(data: bytes) -> list:
    obj = _unpack(data, "graphs")
    try:
        return [graph_from_json(doc) for doc in obj["graphs"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"graphs payload malformed: {exc}") from exc


# ----------------------------------------------------------------------
# warm FTV indexes
# ----------------------------------------------------------------------

def dump_postings(trie) -> list:
    """The trie's live postings as a deterministic nested list.

    Rows are sorted by coded path, then graph id; locations ascending.
    For a ``SuffixTrie`` this dump already contains every expanded
    suffix — which is why restore must re-insert raw.
    """
    rows = []
    for seq, postings in trie.iter_postings():
        rows.append([
            list(seq),
            [
                [gid, p.count, sorted(p.locations)]
                for gid, p in sorted(postings.items())
            ],
        ])
    rows.sort(key=lambda row: row[0])
    return rows


_METHOD_OF_CLASS = {"GrapesIndex": "Grapes", "GGSXIndex": "GGSX"}


def index_method(index) -> str:
    """The catalog-facing method token of an index instance."""
    name = type(index).__name__
    try:
        return _METHOD_OF_CLASS[name]
    except KeyError:
        raise StoreError(f"unsupported FTV index class {name}") from None


def encode_index(index) -> bytes:
    payload = {
        "kind": "index",
        "codec": CODEC,
        "method": index_method(index),
        "max_path_length": index.max_path_length,
        "postings": dump_postings(index.trie),
    }
    # mutated-collection state, emitted only when it diverges from
    # what a fresh restore would derive — an unmutated index encodes
    # to the exact same bytes (and content address) as before
    if index.tombstones:
        payload["tombstones"] = sorted(index.tombstones)
    from ..indexing import LabelInterner  # deferred: indexing imports us

    fresh = LabelInterner(g.labels for g in index.graphs)
    if fresh.code_of != index.interner.code_of:
        # incremental adds *append* codes for novel labels; a restore
        # that re-derived codes from the sorted label set would decode
        # the coded postings against the wrong assignment, so the
        # dump pins the live code order explicitly
        payload["labels"] = sorted(
            index.interner.code_of,
            key=index.interner.code_of.get,
        )
    return _pack(payload)


def decode_index(
    data: bytes, graphs, ftv_method: str, max_path_length: int
):
    """Reconstruct a warm FTV index from a verified blob.

    The payload's method and path length must match the requested
    configuration — a mismatch means the manifest lied about this blob
    (or the blob was swapped), so it surfaces as :class:`CodecError`
    and the caller quarantines + rebuilds.
    """
    from ..indexing import GGSXIndex, GrapesIndex

    obj = _unpack(data, "index")
    if obj.get("method") != ftv_method:
        raise CodecError(
            f"index blob is {obj.get('method')!r}, requested "
            f"{ftv_method!r}"
        )
    if obj.get("max_path_length") != max_path_length:
        raise CodecError(
            f"index blob max_path_length {obj.get('max_path_length')!r}"
            f" != requested {max_path_length}"
        )
    try:
        postings = [
            (
                tuple(int(c) for c in seq),
                [
                    (int(gid), int(count), frozenset(
                        int(v) for v in locations
                    ))
                    for gid, count, locations in rows
                ],
            )
            for seq, rows in obj["postings"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"index payload malformed: {exc}") from exc
    cls = {"Grapes": GrapesIndex, "GGSX": GGSXIndex}.get(ftv_method)
    if cls is None:
        raise CodecError(f"unknown FTV method {ftv_method!r}")
    index = cls(
        graphs, max_path_length=max_path_length, restore=postings
    )
    labels = obj.get("labels")
    if labels is not None:
        # the dump was coded against an incrementally extended
        # interner; install its exact code order (restore itself never
        # consults the interner, so a post-construction swap is safe)
        from ..indexing import LabelInterner

        try:
            interner = LabelInterner([])
            interner.code_of = {
                lab: code for code, lab in enumerate(labels)
            }
        except TypeError as exc:
            raise CodecError(
                f"index payload labels malformed: {exc}"
            ) from exc
        index.interner = interner
        index._invalidate_censuses()
    tombstones = obj.get("tombstones")
    if tombstones:
        try:
            index.tombstones = {int(gid) for gid in tombstones}
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"index payload tombstones malformed: {exc}"
            ) from exc
    return index
