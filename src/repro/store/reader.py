"""StoreReader: verified, quarantining boot-from-store access.

Everything a catalog reads from disk flows through here, and every
failure class the corruption taxonomy names (docs/STORE.md) has one
detection point and one recovery:

===================  ==========================  =====================
defect               detected as                 recovery
===================  ==========================  =====================
torn blob write      length/sha mismatch         quarantine + rebuild
truncated blob       length mismatch             quarantine + rebuild
single-bit flip      sha mismatch                quarantine + rebuild
deleted blob         :class:`BlobMissing`        rebuild
manifest torn        :class:`ManifestError`      quarantine; store
                                                 reads as absent
manifest version     :class:`StoreVersionSkew`   quarantine; store
skew                                             reads as absent
stale manifest       self-checksum mismatch or   quarantine / rebuild
                     :class:`BlobMissing`
duplicate manifest   ``.tmp-*`` leftover —       ignored by design
(torn rewrite)       never opened
===================  ==========================  =====================

Detections increment ``corrupt_detected`` (the counter the acceptance
criteria pin), append a structured entry to :attr:`events` (mirrored
into the service tracer as store spans), and log loudly.  The reader
never raises past its caller with corrupt bytes in hand — a corrupt
store costs rebuild time, never answers.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from .blobs import (
    BlobCorrupt,
    BlobMissing,
    BlobRef,
    BlobStore,
    StoreError,
)
from .codec import CodecError, decode_graphs, decode_index
from .manifest import (
    MANIFEST_NAME,
    Manifest,
    ManifestError,
    StoreMissing,
    StoreVersionSkew,
    load_manifest,
    manifest_path,
)

__all__ = ["StoreReader"]

_log = logging.getLogger("repro.store")

_UNSET = object()


class StoreReader:
    """Verify-then-trust view of one store root.

    The manifest is loaded lazily and at most once per reader; a
    manifest-level defect (torn, version skew, failed self-checksum)
    quarantines the file and pins the reader to "store absent" — the
    degraded-but-correct mode where every restore misses and callers
    warm fresh.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.blobs = BlobStore(self.root)
        self._manifest: object = _UNSET
        #: corruption detections across every class (the pinned counter)
        self.corrupt_detected = 0
        #: files moved aside — blobs or the manifest itself (missing
        #: blobs can't be quarantined)
        self.quarantined = 0
        #: blobs that passed checksum verification
        self.blobs_verified = 0
        #: verified payload bytes handed to codecs
        self.bytes_read = 0
        #: warm artifacts restored from disk (graphs or index blobs)
        self.restores = 0
        #: restore attempts that fell back to an in-process rebuild
        self.rebuilds = 0
        #: dataset lookups the store could not serve (absent/mismatch)
        self.misses = 0
        #: structured loud-event log, append-only, in detection order
        self.events: list[dict] = []

    @classmethod
    def open(cls, store) -> "StoreReader":
        """Coerce a path or an existing reader into a reader."""
        if isinstance(store, cls):
            return store
        return cls(os.fspath(store))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _event(self, event: str, **fields) -> dict:
        entry = {"event": event, **fields}
        self.events.append(entry)
        _log.warning("store %s: %s", event, fields)
        return entry

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    @property
    def manifest(self) -> Optional[Manifest]:
        if self._manifest is _UNSET:
            self._manifest = self._load_manifest()
        return self._manifest  # type: ignore[return-value]

    def _load_manifest(self) -> Optional[Manifest]:
        try:
            return load_manifest(self.root)
        except StoreMissing:
            return None
        except StoreVersionSkew as exc:
            self.corrupt_detected += 1
            moved = self.blobs.quarantine_file(
                manifest_path(self.root), MANIFEST_NAME
            )
            if moved:
                self.quarantined += 1
            self._event(
                "manifest_version_skew",
                found=exc.found,
                expected=exc.expected,
                quarantined=moved,
            )
            return None
        except ManifestError as exc:
            self.corrupt_detected += 1
            moved = self.blobs.quarantine_file(
                manifest_path(self.root), MANIFEST_NAME
            )
            if moved:
                self.quarantined += 1
            self._event(
                "manifest_corrupt", error=str(exc), quarantined=moved
            )
            return None

    def available(self) -> list[str]:
        """Dataset names this store can try to restore."""
        manifest = self.manifest
        return sorted(manifest.datasets) if manifest else []

    def dataset_record(self, name: str) -> Optional[dict]:
        manifest = self.manifest
        if manifest is None:
            return None
        rec = manifest.datasets.get(name)
        if rec is None:
            self.misses += 1
        return rec

    # ------------------------------------------------------------------
    # verified blob loads
    # ------------------------------------------------------------------

    def _load_blob(self, ref_doc: dict, *, what: str, dataset: str) -> bytes:
        ref = BlobRef.from_dict(ref_doc)
        try:
            data = self.blobs.get(ref)
        except BlobMissing as exc:
            self.corrupt_detected += 1
            self._event(
                "blob_missing", dataset=dataset, what=what,
                address=ref.address,
            )
            raise exc
        except BlobCorrupt as exc:
            self.corrupt_detected += 1
            moved = self.blobs.quarantine(ref.address)
            if moved is not None:
                self.quarantined += 1
            self._event(
                "blob_corrupt", dataset=dataset, what=what,
                address=ref.address, reason=exc.reason,
                quarantined=moved,
            )
            raise exc
        self.blobs_verified += 1
        self.bytes_read += len(data)
        return data

    def _decode(self, fn, data: bytes, ref_doc: dict, *, what, dataset):
        """Run a codec over verified bytes, quarantining on failure.

        A checksummed blob that fails to decode means the manifest pins
        bytes the codec never wrote — treated exactly like corruption.
        """
        try:
            return fn(data)
        except CodecError as exc:
            self.corrupt_detected += 1
            address = str(ref_doc.get("address"))
            moved = self.blobs.quarantine(address)
            if moved is not None:
                self.quarantined += 1
            self._event(
                "blob_undecodable", dataset=dataset, what=what,
                address=address, error=str(exc), quarantined=moved,
            )
            raise exc

    def load_graphs(self, name: str) -> list:
        """The dataset's frozen graphs, verified + decoded.

        Raises :class:`StoreError` (after counting, quarantining, and
        logging) when the blob is missing/corrupt — callers fall back
        to the named builder.
        """
        rec = self.dataset_record(name)
        if rec is None:
            raise StoreMissing(f"dataset {name!r} not in store")
        ref = rec["graphs"]
        data = self._load_blob(ref, what="graphs", dataset=name)
        graphs = self._decode(
            decode_graphs, data, ref, what="graphs", dataset=name
        )
        if len(graphs) != ref.get("count", len(graphs)):
            raise StoreError(
                f"graphs blob for {name!r} holds {len(graphs)} graphs; "
                f"manifest says {ref.get('count')}"
            )
        return graphs

    def load_index(
        self,
        name: str,
        graphs,
        *,
        shard: Optional[int] = None,
        ftv_method: str,
        max_path_length: int,
    ):
        """A warm FTV index restored from its blob (shard-scoped when
        ``shard`` is given; the unsharded blob key is ``"*"``)."""
        rec = self.dataset_record(name)
        if rec is None:
            raise StoreMissing(f"dataset {name!r} not in store")
        key = "*" if shard is None else str(shard)
        ref = rec.get("indexes", {}).get(key)
        if ref is None:
            raise StoreMissing(
                f"no index blob {key!r} for dataset {name!r}"
            )
        what = "index" if shard is None else f"index:{shard}"
        data = self._load_blob(ref, what=what, dataset=name)
        return self._decode(
            lambda d: decode_index(d, graphs, ftv_method, max_path_length),
            data, ref, what=what, dataset=name,
        )

    # ------------------------------------------------------------------
    # offline verification (repro warm --verify, store-smoke)
    # ------------------------------------------------------------------

    def verify_all(self) -> dict:
        """Checksum every referenced blob without restoring anything."""
        manifest = self.manifest
        report = {
            "manifest": manifest is not None,
            "epoch": manifest.epoch if manifest else None,
            "datasets": {},
            "blobs_ok": 0,
            "blobs_bad": 0,
        }
        if manifest is None:
            return report
        for name, rec in sorted(manifest.datasets.items()):
            refs = {"graphs": rec["graphs"]}
            refs.update({
                f"index:{k}": v
                for k, v in rec.get("indexes", {}).items()
            })
            status = {}
            for what, ref_doc in refs.items():
                try:
                    self.blobs.get(BlobRef.from_dict(ref_doc))
                except StoreError as exc:
                    status[what] = f"BAD: {exc}"
                    report["blobs_bad"] += 1
                else:
                    status[what] = "ok"
                    report["blobs_ok"] += 1
            report["datasets"][name] = status
        return report

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def as_metrics(self) -> dict:
        return {
            "corrupt_detected": self.corrupt_detected,
            "quarantined": self.quarantined,
            "blobs_verified": self.blobs_verified,
            "bytes_read": self.bytes_read,
            "restores": self.restores,
            "rebuilds": self.rebuilds,
            "misses": self.misses,
            "events": len(self.events),
        }

    def register_metrics(self, registry, prefix: str = "store") -> None:
        """Publish the reader's counters as registry gauges.

        ``replace=True`` throughout: a service can attach a fresh
        reader (new store dir) to a long-lived registry.
        """
        for key in (
            "corrupt_detected", "quarantined", "blobs_verified",
            "bytes_read", "restores", "rebuilds", "misses",
        ):
            registry.gauge(
                f"{prefix}.{key}",
                (lambda k=key: getattr(self, k)),
                replace=True,
            )
        registry.gauge(
            f"{prefix}.events", lambda: len(self.events), replace=True
        )
