"""Performance metrics (paper §3.5).

The paper classifies queries by execution time and defines two families
of aggregate metrics:

* **easy** queries complete under 2''; the **2''–600''** band holds the
  rest of the completed queries; **hard** (*killed*) queries exceed the
  10-minute cap.  In this reproduction the currency is engine steps and
  the thresholds live in :class:`Thresholds`.
* ``(max/min)`` — per query, the ratio of the slowest to the fastest
  isomorphic instance; quantifies isomorphic-query variance (§5).
* ``speedup*`` — ``t_orig / T`` where ``T`` is the best alternative
  (cheapest rewriting, cheapest algorithm, or the Ψ race time);
  "what we lose if we choose the original method over the
  alternatives".
* **WLA** (workload-level aggregation) — ``avg(B) / avg(A)``: the
  system view.  **QLA** (query-level average) — ``avg(B_i / A_i)``: the
  user view.  Killed queries are charged the cap before either
  aggregation, per the paper's 600''-convention.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Band",
    "Thresholds",
    "CostRecord",
    "classify",
    "band_breakdown",
    "BandBreakdown",
    "wla_ratio",
    "qla_ratio",
    "max_min_ratio",
    "speedup_values",
    "DistributionSummary",
    "summarize_distribution",
    "percentile",
    "LatencySummary",
    "summarize_latencies",
]


class Band(Enum):
    """Query-time class (paper: easy / 2''-600'' / hard)."""

    EASY = "easy"
    MID = "2''-600''"
    HARD = "hard"


@dataclass(frozen=True)
class Thresholds:
    """Step thresholds standing in for the paper's 2'' and 600'' marks.

    ``easy_steps`` plays the role of 2 seconds; ``budget_steps`` the
    10-minute kill cap.  The default 1:100 ratio mirrors the paper's
    2'':600'' at the reproduction's reduced scale (DESIGN.md §2).
    """

    easy_steps: int = 2_000
    budget_steps: int = 200_000

    def __post_init__(self) -> None:
        if not 0 < self.easy_steps < self.budget_steps:
            raise ValueError("need 0 < easy_steps < budget_steps")


@dataclass(frozen=True)
class CostRecord:
    """Charged cost of one attempt (killed attempts carry the cap)."""

    steps: int
    found: bool
    killed: bool

    def charged(self, thresholds: Thresholds) -> int:
        """Step count entering the metrics (cap when killed)."""
        return self.steps if not self.killed else thresholds.budget_steps


def classify(record: CostRecord, thresholds: Thresholds) -> Band:
    """Band of one attempt."""
    if record.killed:
        return Band.HARD
    if record.steps < thresholds.easy_steps:
        return Band.EASY
    return Band.MID


@dataclass
class BandBreakdown:
    """Per-band average execution times and percentages (Tables 3-4)."""

    avg_easy: float
    avg_mid: float
    avg_completed: float
    pct_easy: float
    pct_mid: float
    pct_hard: float
    count: int

    def as_rows(self) -> list[tuple[str, str]]:
        def fmt(x: float) -> str:
            return "-" if x != x else f"{x:.1f}"  # NaN -> "-"

        return [
            ("AET easy (steps)", fmt(self.avg_easy)),
            ("% of easy", f"{self.pct_easy:.1f}"),
            ("AET 2''-600'' (steps)", fmt(self.avg_mid)),
            ("% of 2''-600''", f"{self.pct_mid:.1f}"),
            ("% of hard", f"{self.pct_hard:.1f}"),
        ]


def band_breakdown(
    records: Sequence[CostRecord], thresholds: Thresholds
) -> BandBreakdown:
    """Aggregate a workload's records into the paper's band summary.

    ``avg_*`` fields are NaN when a band is empty (rendered "-", as the
    paper prints dashes for empty cells).
    """
    if not records:
        raise ValueError("no records")
    easy = [r.steps for r in records if classify(r, thresholds) is Band.EASY]
    mid = [r.steps for r in records if classify(r, thresholds) is Band.MID]
    completed = [
        r.steps for r in records if classify(r, thresholds) is not Band.HARD
    ]
    n = len(records)

    def avg(xs: list[int]) -> float:
        return statistics.mean(xs) if xs else float("nan")

    return BandBreakdown(
        avg_easy=avg(easy),
        avg_mid=avg(mid),
        avg_completed=avg(completed),
        pct_easy=100.0 * len(easy) / n,
        pct_mid=100.0 * len(mid) / n,
        pct_hard=100.0 * (n - len(completed)) / n,
        count=n,
    )


def wla_ratio(
    baseline: Sequence[float], improved: Sequence[float]
) -> float:
    """Workload-level aggregation: ``avg(baseline) / avg(improved)``.

    Expressed as a speedup (>1 means ``improved`` is faster), matching
    the orientation of the paper's speedup*_WLA figures.
    """
    if len(baseline) != len(improved) or not baseline:
        raise ValueError("need equal-length, non-empty sequences")
    denom = statistics.mean(improved)
    if denom == 0:
        raise ValueError("improved sequence averages to zero")
    return statistics.mean(baseline) / denom


def qla_ratio(
    baseline: Sequence[float], improved: Sequence[float]
) -> float:
    """Query-level average: ``avg_i(baseline_i / improved_i)``."""
    if len(baseline) != len(improved) or not baseline:
        raise ValueError("need equal-length, non-empty sequences")
    ratios = []
    for b, i in zip(baseline, improved):
        if i == 0:
            raise ValueError("zero improved time")
        ratios.append(b / i)
    return statistics.mean(ratios)


def max_min_ratio(times: Sequence[float]) -> float:
    """The paper's (max/min) metric over one query's instances."""
    if not times:
        raise ValueError("no instance times")
    lo = min(times)
    if lo == 0:
        raise ValueError("zero minimum time")
    return max(times) / lo


def speedup_values(
    original: Sequence[float], best_alternative: Sequence[float]
) -> list[float]:
    """Per-query speedup* values: ``t_orig / T``  (paper §3.5)."""
    if len(original) != len(best_alternative) or not original:
        raise ValueError("need equal-length, non-empty sequences")
    out = []
    for t, alt in zip(original, best_alternative):
        if alt == 0:
            raise ValueError("zero alternative time")
        out.append(t / alt)
    return out


@dataclass
class DistributionSummary:
    """stdDev / min / max / median, as in the paper's Tables 5-9."""

    mean: float
    stddev: float
    minimum: float
    maximum: float
    median: float

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("avg", f"{self.mean:.2f}"),
            ("stdDev", f"{self.stddev:.2f}"),
            ("min", f"{self.minimum:.2f}"),
            ("max", f"{self.maximum:.2f}"),
            ("median", f"{self.median:.2f}"),
        ]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The serving layer reports simulated-step latencies as p50/p95/p99;
    nearest-rank keeps the result an actually-observed latency (and the
    whole pipeline integer-valued), unlike interpolating estimators.

    Edge cases are part of the bench-digest contract and pinned by
    ``tests/test_metrics.py`` (audited for the observability layer):

    * ``n == 0`` raises ``ValueError`` — callers render ``None``, never
      a fabricated zero.
    * ``n == 1`` returns that value for **every** ``q``, including 0.
    * ``n == 2``: ``rank = ceil(q / 50)``, so q in (0, 50] hits the
      smaller value and q in (50, 100] the larger — p50 is the *lower*
      of two samples, not their midpoint.
    * Ties are returned verbatim (the sort is stable and the result is
      always a member of ``values``).
    """
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 + mean/max of a latency sample, in steps."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict:
        """JSON-friendly form (BENCH_service.json, service stats)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """Latency summary of one sample (service/bench reporting)."""
    if not values:
        raise ValueError("no values")
    return LatencySummary(
        count=len(values),
        mean=statistics.mean(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=max(values),
    )


def summarize_distribution(values: Sequence[float]) -> DistributionSummary:
    """Summary statistics of a per-query metric distribution."""
    if not values:
        raise ValueError("no values")
    return DistributionSummary(
        mean=statistics.mean(values),
        stddev=statistics.pstdev(values) if len(values) > 1 else 0.0,
        minimum=min(values),
        maximum=max(values),
        median=statistics.median(values),
    )
