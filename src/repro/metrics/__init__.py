"""Performance metrics: bands, (max/min), speedup*, QLA/WLA (paper §3.5)."""

from .core import (
    Band,
    BandBreakdown,
    CostRecord,
    DistributionSummary,
    LatencySummary,
    Thresholds,
    band_breakdown,
    classify,
    max_min_ratio,
    percentile,
    qla_ratio,
    speedup_values,
    summarize_distribution,
    summarize_latencies,
    wla_ratio,
)

__all__ = [
    "Band",
    "BandBreakdown",
    "CostRecord",
    "DistributionSummary",
    "LatencySummary",
    "Thresholds",
    "band_breakdown",
    "classify",
    "max_min_ratio",
    "percentile",
    "qla_ratio",
    "speedup_values",
    "summarize_distribution",
    "summarize_latencies",
    "wla_ratio",
]
