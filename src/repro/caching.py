"""Query-result caching up to isomorphism (the iGQ idea, paper ref [19]).

The paper's related work notes that "iGQ is a recent approach that
employs caching on top of any proposed FTV method to improve
performance" — by the same research group, and orthogonal to the
Ψ-framework.  This module provides that layer: a cache of previously
answered decision queries, keyed *up to isomorphism*.

Isomorphic repeats are common in real workloads (and are this paper's
whole subject!): the same motif arrives with different node IDs.  The
cache keys entries by the cheap invariant
:func:`repro.graphs.isomorphism.isomorphism_invariant_key` and resolves
collisions with the exact checker, so a hit is *sound* — any two
isomorphic queries have identical answer sets.

Usage::

    cache = QueryCache(capacity=256)
    cached = CachedFTVIndex(grapes_index, cache)
    result = cached.query(query, budget)   # repeat motifs are free
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from .graphs import LabeledGraph
from .graphs.isomorphism import are_isomorphic, isomorphism_invariant_key
from .indexing import FTVIndex, FTVQueryResult
from .matching import Budget

__all__ = [
    "QueryCache",
    "CachedFTVIndex",
    "CacheStats",
    "PrepareCache",
    "prepare_cache",
]


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`QueryCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_metrics(self, prefix: str = "") -> dict:
        """Flat counter dict for metrics/stats surfaces (JSON-ready)."""
        return {
            f"{prefix}hits": self.hits,
            f"{prefix}misses": self.misses,
            f"{prefix}evictions": self.evictions,
            f"{prefix}lookups": self.lookups,
            f"{prefix}hit_rate": self.hit_rate,
        }


class QueryCache:
    """LRU cache of query answers, keyed up to isomorphism.

    Values are opaque to the cache (the FTV wrapper stores the list of
    matching graph IDs).  Each invariant-key bucket holds the distinct
    non-isomorphic queries that share the invariant; exact isomorphism
    is verified on lookup, so false hits are impossible.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        # invariant key -> list of (query graph, value); LRU over keys
        self._buckets: OrderedDict[tuple, list[tuple[LabeledGraph, object]]]
        self._buckets = OrderedDict()
        self._entries = 0

    def __len__(self) -> int:
        return self._entries

    def lookup(self, query: LabeledGraph) -> Optional[object]:
        """The cached value for ``query`` (or an isomorphic twin)."""
        key = isomorphism_invariant_key(query)
        bucket = self._buckets.get(key)
        if bucket is not None:
            for stored, value in bucket:
                if are_isomorphic(stored, query):
                    self._buckets.move_to_end(key)
                    self.stats.hits += 1
                    return value
        self.stats.misses += 1
        return None

    def store(self, query: LabeledGraph, value: object) -> None:
        """Insert (or refresh) the answer for ``query``."""
        key = isomorphism_invariant_key(query)
        bucket = self._buckets.setdefault(key, [])
        for i, (stored, _) in enumerate(bucket):
            if are_isomorphic(stored, query):
                bucket[i] = (stored, value)
                self._buckets.move_to_end(key)
                return
        bucket.append((query, value))
        self._entries += 1
        self._buckets.move_to_end(key)
        while self._entries > self.capacity:
            _, evicted = self._buckets.popitem(last=False)
            self._entries -= len(evicted)
            self.stats.evictions += len(evicted)


class PrepareCache:
    """Memo of per-stored-graph matcher indexes.

    ``Matcher.prepare`` is un-budgeted but far from free (GraphQL
    signatures, sPath distance structures); before this cache, every
    race re-indexed the stored graph per variant.  Entries are keyed by
    ``Matcher.prepare_key()`` and stored *on the graph itself*
    (``LabeledGraph._index_memo``), so the memo lives exactly as long
    as the graph — dropping the graph drops its indexes (a global
    graph -> index map would pin both forever, since an index strongly
    references its graph).  The cache object only tracks stats and the
    set of graphs touched (weakly, for :meth:`clear`).

    A graph mutated after indexing is transparently re-indexed:
    ``add_edge`` resets the memo.
    """

    def __init__(self) -> None:
        self._graphs: "weakref.WeakSet[LabeledGraph]" = weakref.WeakSet()
        # namespace token: entries on the graph-side memo are keyed by
        # (token, key), so independent PrepareCache instances never see
        # (or clear) each other's entries
        self._ns = object()
        self.stats = CacheStats()
        self._entries = 0

    def get(
        self,
        graph: LabeledGraph,
        key: tuple,
        builder: Callable[[], object],
    ):
        """The memoized ``builder()`` result for (``graph``, ``key``)."""
        indexes = graph._index_memo
        if indexes is None:
            indexes = graph._index_memo = {}
        self._graphs.add(graph)
        full_key = (self._ns, key)
        hit = indexes.get(full_key)
        if hit is None:
            self.stats.misses += 1
            hit = indexes[full_key] = builder()
            self._entries += 1
        else:
            self.stats.hits += 1
        return hit

    @property
    def entries(self) -> int:
        """Number of live memoized indexes built through this cache.

        Graphs dropped by the garbage collector take their memo entries
        with them (the whole point of graph-side storage), so this is an
        upper bound that :meth:`clear` resets exactly.
        """
        return self._entries

    def evict_graph(self, graph: LabeledGraph) -> int:
        """Drop one graph's memoized indexes, counting the evictions.

        The catalog's watermark eviction uses this: unloading a dataset
        through the garbage collector would drop the entries silently,
        while an explicit evict shows up in the cache-efficacy counters
        operators watch.  Returns the number of entries dropped.
        """
        dropped = 0
        indexes = graph._index_memo
        if indexes:
            ns = self._ns
            for full_key in [k for k in indexes if k[0] is ns]:
                del indexes[full_key]
                dropped += 1
        self.stats.evictions += dropped
        self._entries = max(0, self._entries - dropped)
        self._graphs.discard(graph)
        return dropped

    def clear(self) -> None:
        """Drop every index this cache memoized (testing / memory hook).

        Dropped entries are counted as evictions in :attr:`stats`, so
        memory-pressure hooks that call this show up in cache-efficacy
        metrics rather than silently resetting the world.
        """
        ns = self._ns
        for graph in list(self._graphs):
            indexes = graph._index_memo
            if indexes:
                for full_key in [k for k in indexes if k[0] is ns]:
                    del indexes[full_key]
                    self.stats.evictions += 1
        self._graphs.clear()
        self._entries = 0


#: The process-wide instance :meth:`Matcher.prepare` routes through.
prepare_cache = PrepareCache()


@dataclass
class CachedFTVIndex:
    """An FTV index with an isomorphism-aware answer cache in front.

    The decision answer of a subgraph query depends only on the query's
    isomorphism class, so cached answers transfer exactly.  Budgets do
    affect completeness (a killed pair may hide a match), so only
    results from *fully completed* verifications are cached.
    """

    index: FTVIndex
    cache: QueryCache = field(default_factory=QueryCache)

    def query(
        self,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
    ) -> FTVQueryResult:
        """Answer a decision query, consulting the cache first."""
        cached = self.cache.lookup(query)
        if cached is not None:
            result = FTVQueryResult(candidate_ids=list(cached[0]))
            result.reports = list(cached[1])
            return result
        result = self.index.query(query, budget)
        if not any(r.killed for r in result.reports):
            self.cache.store(
                query,
                (tuple(result.candidate_ids), tuple(result.reports)),
            )
        return result
