"""Query workload generation (paper §3.4).

The paper's generator: "first we select a graph from the dataset
uniformly and at random, and from that graph we select a node uniformly
and at random.  Starting from said node, we generate a query graph by
incrementally adding edges chosen uniformly at random from the set of
all edges adjacent to the resulting query graph, until it reaches the
desired size."  Queries are therefore connected subgraphs of stored
graphs — every query has at least one embedding, which is what makes
killed queries genuinely *straggler* behaviour rather than unsatisfiable
inputs.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass

from ..graphs import GraphError, LabeledGraph

__all__ = [
    "Query",
    "extract_query",
    "generate_workload",
    "TenantMix",
    "MixedQuery",
    "permuted_instance",
    "generate_tenant_stream",
    "generate_tenant_streams",
    "default_tenant_mixes",
]


@dataclass(frozen=True)
class Query:
    """One workload query.

    ``source_graph_id`` records which stored graph the query was grown
    from (always 0 for single-graph NFV datasets).
    """

    graph: LabeledGraph
    source_graph_id: int
    num_edges: int
    seed: int

    @property
    def name(self) -> str:
        """The query graph's name (``q<index>_<size>e``)."""
        return self.graph.name


def extract_query(
    graph: LabeledGraph,
    num_edges: int,
    rng: random.Random,
    name: str = "q",
) -> LabeledGraph:
    """Grow one query of ``num_edges`` edges by random edge accretion.

    Raises :class:`GraphError` when the seed vertex's component has too
    few edges to reach the requested size (callers retry with a fresh
    seed vertex).
    """
    if num_edges < 1:
        raise GraphError("queries need at least one edge")
    if graph.size < num_edges:
        raise GraphError("stored graph smaller than requested query")
    start = rng.randrange(graph.order)
    nodes: list[int] = [start]
    node_set = {start}
    chosen: set[tuple[int, int]] = set()
    # frontier: edges adjacent to the current query subgraph
    while len(chosen) < num_edges:
        frontier: list[tuple[int, int]] = []
        for u in nodes:
            for v in graph.neighbors(u):
                e = (u, v) if u < v else (v, u)
                if e not in chosen:
                    frontier.append(e)
        # dedupe, keep deterministic order
        frontier = sorted(set(frontier))
        if not frontier:
            raise GraphError(
                "component exhausted before reaching requested size"
            )
        e = frontier[rng.randrange(len(frontier))]
        chosen.add(e)
        for end in e:
            if end not in node_set:
                node_set.add(end)
                nodes.append(end)
    mapping = {old: new for new, old in enumerate(nodes)}
    query = LabeledGraph(
        len(nodes), [graph.label(v) for v in nodes], name=name
    )
    for u, v in sorted(chosen):
        query.add_edge(mapping[u], mapping[v])
    return query


def generate_workload(
    graphs: list[LabeledGraph],
    num_queries: int,
    num_edges: int,
    seed: int = 0,
) -> list[Query]:
    """Generate ``num_queries`` queries of ``num_edges`` edges each.

    Stored graphs are drawn uniformly; under-sized seed components are
    retried (bounded), per the paper's protocol.
    """
    if not graphs:
        raise GraphError("empty dataset")
    rng = random.Random(seed)
    queries: list[Query] = []
    attempts = 0
    while len(queries) < num_queries:
        attempts += 1
        if attempts > 100 * num_queries:
            raise GraphError(
                f"could not grow {num_queries} queries of {num_edges} "
                "edges; dataset too small"
            )
        gid = rng.randrange(len(graphs))
        try:
            q = extract_query(
                graphs[gid],
                num_edges,
                rng,
                name=f"q{len(queries):03d}_{num_edges}e",
            )
        except GraphError:
            continue
        queries.append(
            Query(
                graph=q,
                source_graph_id=gid,
                num_edges=num_edges,
                seed=seed,
            )
        )
    return queries


# ----------------------------------------------------------------------
# multi-tenant workload mixes (serving layer / load generator)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TenantMix:
    """One tenant's workload profile for the serving layer.

    ``sizes`` are the query-size strata (edges) cycled round-robin, so a
    stream is stratified across the paper's size axis — size is the
    dominant hardness driver (§4), which makes this a hardness
    stratification too.  ``repeat_fraction`` of the stream re-issues an
    earlier query as a *permuted isomorphic instance* (fresh node IDs,
    same motif) — the real-workload pattern iGQ-style result caches
    exploit.  ``weight`` is the tenant's fair-share weight hint.
    """

    tenant: str
    sizes: tuple[int, ...]
    count: int
    repeat_fraction: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.sizes:
            raise GraphError("tenant mix needs at least one size")
        if self.count < 1:
            raise GraphError("tenant mix needs at least one query")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise GraphError("repeat_fraction must be in [0, 1)")
        if self.weight <= 0:
            raise GraphError("weight must be positive")


@dataclass(frozen=True)
class MixedQuery:
    """One arrival in a multi-tenant stream."""

    tenant: str
    query: Query
    index: int
    is_repeat: bool


def permuted_instance(
    graph: LabeledGraph, rng: random.Random, name: str = ""
) -> LabeledGraph:
    """An isomorphic copy of ``graph`` under a random node-ID shuffle.

    This is how workload repeats arrive in practice: the same motif,
    different surface form (§5's isomorphic instances).  Canonical-form
    result caches must see through exactly this transformation.
    """
    perm = list(range(graph.order))
    rng.shuffle(perm)
    return graph.permuted(perm, name=name or graph.name)


def generate_tenant_stream(
    graphs: list[LabeledGraph],
    mix: TenantMix,
    seed: int = 0,
) -> list[MixedQuery]:
    """One tenant's seeded stream: size-stratified, with repeats.

    Fresh queries cycle through ``mix.sizes``; each subsequent arrival
    re-issues a permuted copy of an earlier one with probability
    ``mix.repeat_fraction``.  Deterministic given (``graphs``, ``mix``,
    ``seed``).
    """
    # string seeds: random.Random seeds from str bytes deterministically
    # (tuple seeds would go through randomized hash())
    rng = random.Random(f"{seed}:{mix.tenant}:stream")
    # worst case (no repeat ever fires) position i draws sizes[i % k]:
    # count the actual draws per size, so duplicated strata work too
    needed = Counter(
        mix.sizes[i % len(mix.sizes)] for i in range(mix.count)
    )
    per_size = {
        size: generate_workload(
            graphs,
            needed[size],
            size,
            seed=zlib.crc32(f"{seed}:{mix.tenant}:{size}".encode()),
        )
        for size in sorted(needed)
    }
    cursor = {size: 0 for size in per_size}
    stream: list[MixedQuery] = []
    for i in range(mix.count):
        if stream and rng.random() < mix.repeat_fraction:
            earlier = stream[rng.randrange(len(stream))].query
            twin = permuted_instance(
                earlier.graph, rng, name=f"{earlier.name}_rep{i}"
            )
            query = Query(
                graph=twin,
                source_graph_id=earlier.source_graph_id,
                num_edges=earlier.num_edges,
                seed=seed,
            )
            stream.append(
                MixedQuery(
                    tenant=mix.tenant, query=query, index=i, is_repeat=True
                )
            )
            continue
        size = mix.sizes[i % len(mix.sizes)]
        query = per_size[size][cursor[size]]
        cursor[size] += 1
        stream.append(
            MixedQuery(
                tenant=mix.tenant, query=query, index=i, is_repeat=False
            )
        )
    return stream


def generate_tenant_streams(
    graphs: list[LabeledGraph],
    mixes: list[TenantMix] | tuple[TenantMix, ...],
    seed: int = 0,
) -> list[MixedQuery]:
    """Interleave per-tenant streams into one arrival order.

    Arrivals alternate round-robin across tenants (position 0 of every
    tenant, then position 1, ...), the deterministic stand-in for
    concurrent independent clients.
    """
    if not mixes:
        raise GraphError("need at least one tenant mix")
    streams = [generate_tenant_stream(graphs, m, seed) for m in mixes]
    merged: list[MixedQuery] = []
    depth = max(len(s) for s in streams)
    for i in range(depth):
        for s in streams:
            if i < len(s):
                merged.append(s[i])
    return merged


def default_tenant_mixes(
    num_tenants: int,
    queries_per_tenant: int,
    sizes: tuple[int, ...] = (4, 8, 12),
    repeat_fraction: float = 0.35,
) -> list[TenantMix]:
    """A standard stratified multi-tenant mix (CLI / bench default).

    Tenants get staggered size strata (tenant ``t`` starts its size
    cycle at offset ``t``) so concurrent streams are heterogeneous —
    some tenants lean hard, some easy — which is what makes fair-share
    admission observable.
    """
    if num_tenants < 1:
        raise GraphError("need at least one tenant")
    mixes = []
    for t in range(num_tenants):
        rotated = sizes[t % len(sizes):] + sizes[:t % len(sizes)]
        mixes.append(
            TenantMix(
                tenant=f"tenant{t}",
                sizes=rotated,
                count=queries_per_tenant,
                repeat_fraction=repeat_fraction,
                weight=1.0 + (t % 2),  # alternate 1x / 2x shares
            )
        )
    return mixes
