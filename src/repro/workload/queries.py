"""Query workload generation (paper §3.4).

The paper's generator: "first we select a graph from the dataset
uniformly and at random, and from that graph we select a node uniformly
and at random.  Starting from said node, we generate a query graph by
incrementally adding edges chosen uniformly at random from the set of
all edges adjacent to the resulting query graph, until it reaches the
desired size."  Queries are therefore connected subgraphs of stored
graphs — every query has at least one embedding, which is what makes
killed queries genuinely *straggler* behaviour rather than unsatisfiable
inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graphs import GraphError, LabeledGraph

__all__ = ["Query", "extract_query", "generate_workload"]


@dataclass(frozen=True)
class Query:
    """One workload query.

    ``source_graph_id`` records which stored graph the query was grown
    from (always 0 for single-graph NFV datasets).
    """

    graph: LabeledGraph
    source_graph_id: int
    num_edges: int
    seed: int

    @property
    def name(self) -> str:
        """The query graph's name (``q<index>_<size>e``)."""
        return self.graph.name


def extract_query(
    graph: LabeledGraph,
    num_edges: int,
    rng: random.Random,
    name: str = "q",
) -> LabeledGraph:
    """Grow one query of ``num_edges`` edges by random edge accretion.

    Raises :class:`GraphError` when the seed vertex's component has too
    few edges to reach the requested size (callers retry with a fresh
    seed vertex).
    """
    if num_edges < 1:
        raise GraphError("queries need at least one edge")
    if graph.size < num_edges:
        raise GraphError("stored graph smaller than requested query")
    start = rng.randrange(graph.order)
    nodes: list[int] = [start]
    node_set = {start}
    chosen: set[tuple[int, int]] = set()
    # frontier: edges adjacent to the current query subgraph
    while len(chosen) < num_edges:
        frontier: list[tuple[int, int]] = []
        for u in nodes:
            for v in graph.neighbors(u):
                e = (u, v) if u < v else (v, u)
                if e not in chosen:
                    frontier.append(e)
        # dedupe, keep deterministic order
        frontier = sorted(set(frontier))
        if not frontier:
            raise GraphError(
                "component exhausted before reaching requested size"
            )
        e = frontier[rng.randrange(len(frontier))]
        chosen.add(e)
        for end in e:
            if end not in node_set:
                node_set.add(end)
                nodes.append(end)
    mapping = {old: new for new, old in enumerate(nodes)}
    query = LabeledGraph(
        len(nodes), [graph.label(v) for v in nodes], name=name
    )
    for u, v in sorted(chosen):
        query.add_edge(mapping[u], mapping[v])
    return query


def generate_workload(
    graphs: list[LabeledGraph],
    num_queries: int,
    num_edges: int,
    seed: int = 0,
) -> list[Query]:
    """Generate ``num_queries`` queries of ``num_edges`` edges each.

    Stored graphs are drawn uniformly; under-sized seed components are
    retried (bounded), per the paper's protocol.
    """
    if not graphs:
        raise GraphError("empty dataset")
    rng = random.Random(seed)
    queries: list[Query] = []
    attempts = 0
    while len(queries) < num_queries:
        attempts += 1
        if attempts > 100 * num_queries:
            raise GraphError(
                f"could not grow {num_queries} queries of {num_edges} "
                "edges; dataset too small"
            )
        gid = rng.randrange(len(graphs))
        try:
            q = extract_query(
                graphs[gid],
                num_edges,
                rng,
                name=f"q{len(queries):03d}_{num_edges}e",
            )
        except GraphError:
            continue
        queries.append(
            Query(
                graph=q,
                source_graph_id=gid,
                num_edges=num_edges,
                seed=seed,
            )
        )
    return queries
