"""Query workload generation (paper §3.4)."""

from .queries import Query, extract_query, generate_workload

__all__ = ["Query", "extract_query", "generate_workload"]
