"""Query workload generation (paper §3.4) + multi-tenant serving mixes."""

from .queries import (
    MixedQuery,
    Query,
    TenantMix,
    default_tenant_mixes,
    extract_query,
    generate_tenant_stream,
    generate_tenant_streams,
    generate_workload,
    permuted_instance,
)

__all__ = [
    "MixedQuery",
    "Query",
    "TenantMix",
    "default_tenant_mixes",
    "extract_query",
    "generate_tenant_stream",
    "generate_tenant_streams",
    "generate_workload",
    "permuted_instance",
]
