"""FTV (filter-then-verify) indexed subgraph query processing.

Grapes and GGSX, the two FTV methods the paper identified as the best
performers in its earlier study [9], plus the shared path-feature and
trie machinery.

Invariants this package maintains (the serving layer builds on both):

* **Filtering is a per-graph predicate** — whether a stored graph
  survives the filter depends only on that graph's own features and
  the query, never on which other graphs share the index.  This is
  what makes an index over any *subset* of a collection (a catalog
  shard) return exactly the global candidate set restricted to the
  subset, so sharded and unsharded serving agree bit-for-bit.
* **Everything is deterministic** — candidate ids come out ascending
  and duplicate-free, censuses and trie probes are pure functions of
  the (graphs, query) pair, and the bitset fast path is proven
  equivalent to the reference set algebra in
  ``tests/test_filter_equivalence.py``.
"""

from .base import FTVIndex, FTVQueryResult, VerificationReport
from .features import (
    LabelInterner,
    PathCensus,
    canonical_sequence,
    coded_path_census,
    label_path_census,
)
from .ggsx import GGSXIndex
from .grapes import GrapesIndex
from .sketch import SKETCH_TIERS, FeatureSketch, bucket_of, tier_index
from .trie import PathTrie, Posting, SuffixTrie

__all__ = [
    "FeatureSketch",
    "SKETCH_TIERS",
    "bucket_of",
    "tier_index",
    "FTVIndex",
    "FTVQueryResult",
    "VerificationReport",
    "LabelInterner",
    "PathCensus",
    "canonical_sequence",
    "coded_path_census",
    "label_path_census",
    "GGSXIndex",
    "GrapesIndex",
    "PathTrie",
    "Posting",
    "SuffixTrie",
]
