"""FTV (filter-then-verify) indexed subgraph query processing.

Grapes and GGSX, the two FTV methods the paper identified as the best
performers in its earlier study [9], plus the shared path-feature and
trie machinery.
"""

from .base import FTVIndex, FTVQueryResult, VerificationReport
from .features import (
    LabelInterner,
    PathCensus,
    canonical_sequence,
    coded_path_census,
    label_path_census,
)
from .ggsx import GGSXIndex
from .grapes import GrapesIndex
from .trie import PathTrie, Posting, SuffixTrie

__all__ = [
    "FTVIndex",
    "FTVQueryResult",
    "VerificationReport",
    "LabelInterner",
    "PathCensus",
    "canonical_sequence",
    "coded_path_census",
    "label_path_census",
    "GGSXIndex",
    "GrapesIndex",
    "PathTrie",
    "Posting",
    "SuffixTrie",
]
