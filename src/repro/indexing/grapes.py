"""Grapes FTV index (Giugno et al., PLoS One 2013).

Per the paper's §3.1.1:

* paths up to a maximum length are found by DFS and indexed in a
  **trie**;
* unlike GGSX, Grapes additionally maintains **location information**
  (which vertices each feature touches in each stored graph);
* at query time the query's paths prune the trie, the surviving
  candidate set is further pruned by **feature frequencies**, and then
  Grapes uses the location information to extract the *relevant
  connected components* of each candidate graph — VF2 verification runs
  against those (typically much smaller) components instead of the
  whole graph;
* Grapes is multithreaded; the paper runs it with 1 and 4 threads
  (Grapes/1, Grapes/4).

The verification step follows the paper's modification: VF2 returns
after the *first* match (decision semantics).  Multithreading is
simulated deterministically over step costs (components are
list-scheduled onto ``threads`` workers with first-match early
termination) — see :mod:`repro.scheduling` and DESIGN.md §2.

Determinism/equivalence: filtering is a per-graph predicate (candidate
membership never depends on the rest of the collection, which is what
lets a catalog shard's Grapes index agree with the global one), the
trie's bitset fast path must match ``filter_reference`` bit-for-bit,
and per-graph feature-location unions are isomorphism invariants safe
to memoize per canonical query form.
"""

from __future__ import annotations

from typing import Optional

from ..graphs import LabeledGraph
from ..matching import Budget, GraphIndex, drive
from ..scheduling import TaskResult, first_match_schedule
from .base import FTVIndex, VerificationReport
from .features import coded_path_census
from .trie import PathTrie

__all__ = ["GrapesIndex", "DEFAULT_ROOT_SLICES"]

#: Work-chunk granularity of the multithreaded verification: each
#: relevant component's root-candidate set is split into this many
#: contiguous slices (Grapes/4 schedules them over 4 workers; Grapes/1
#: runs them in sequence, which is exactly single-threaded VF2).
DEFAULT_ROOT_SLICES = 4


class GrapesIndex(FTVIndex):
    """Grapes: path trie with location info, component-wise verification.

    Parameters
    ----------
    graphs, max_path_length:
        See :class:`FTVIndex`.
    threads:
        Simulated verification threads (paper: Grapes/1 and Grapes/4).
    """

    trie_class = PathTrie

    def __init__(
        self,
        graphs: list[LabeledGraph],
        max_path_length: int = 3,
        threads: int = 1,
        restore: Optional[list] = None,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        super().__init__(graphs, max_path_length, restore=restore)
        self.method_name = f"Grapes/{threads}"

    def with_threads(self, threads: int) -> "GrapesIndex":
        """A view of this index running with a different thread count.

        The trie and graph caches are shared (index construction is the
        expensive part); only the verification parallelism changes.
        Lets experiments compare Grapes/1 and Grapes/4 without building
        the index twice.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        clone = object.__new__(GrapesIndex)
        clone.__dict__.update(self.__dict__)
        clone.threads = threads
        clone.method_name = f"Grapes/{threads}"
        return clone

    # ------------------------------------------------------------------
    # offline stage
    # ------------------------------------------------------------------

    def _build(self) -> None:
        self.trie = PathTrie()
        for gid, graph in enumerate(self.graphs):
            self._index_graph(gid, graph)

    def _index_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        census = coded_path_census(
            graph,
            self.max_path_length,
            self.interner.encode_vertices(graph.labels),
            with_locations=True,
        )
        for seq, count in census.counts.items():
            self.trie.insert(
                seq,
                graph_id,
                count,
                census.locations.get(seq, frozenset()),
            )

    # ------------------------------------------------------------------
    # online stage
    # ------------------------------------------------------------------

    def filter(self, query: LabeledGraph) -> list[int]:
        """Candidates containing every query feature often enough.

        Bitset fast path: threshold masks per feature, intersected
        rarest-first — provably the same sorted candidate ids as the
        seed's set algebra (see :meth:`FTVIndex.filter_reference`).
        """
        return self._bitset_filter(query)

    def feature_locations(
        self, query: LabeledGraph, graph_id: int
    ) -> frozenset[int]:
        """Union of the query features' locations in one stored graph.

        Computed for *every* stored graph in a single pass over the
        query's features (one trie walk per feature, not one per
        (feature, candidate) pair — the seed's shape) and memoized on
        the query census, so a multi-candidate verification pays the
        walk once and isomorphic repeats pay nothing.
        """
        census = self.coded_query_census(query)
        unions = census.location_unions
        if unions is None:
            building: dict[int, set] = {}
            find = self.trie._find
            get = building.get
            for seq in census.counts:
                node = find(seq)
                if node is None:
                    continue
                for gid, posting in node.postings.items():
                    locs = posting.locations
                    if locs:
                        got = get(gid)
                        if got is None:
                            building[gid] = set(locs)
                        else:
                            got.update(locs)
            unions = {
                gid: frozenset(s) for gid, s in building.items()
            }
            census.location_unions = unions
        return unions.get(graph_id, frozenset())

    def relevant_components(
        self, query: LabeledGraph, graph_id: int
    ) -> list[tuple[LabeledGraph, dict[int, int]]]:
        """Connected components of the candidate graph induced on the
        union of the query features' locations.

        Components that cannot possibly host the query (too few
        vertices, or missing some required label multiplicity) are
        dropped before verification.  Ordered by ascending component
        size, smallest-ID first — the cheap-first deterministic order.
        """
        vertices = self.feature_locations(query, graph_id)
        if not vertices:
            return []
        graph = self.graphs[graph_id]
        region, mapping = graph.induced_subgraph(sorted(vertices))
        need: dict[object, int] = {}
        for u in query.vertices():
            lab = query.label(u)
            need[lab] = need.get(lab, 0) + 1
        components: list[tuple[LabeledGraph, dict[int, int]]] = []
        inverse = {new: old for old, new in mapping.items()}
        for comp in region.connected_components():
            if len(comp) < query.order:
                continue
            sub, sub_map = region.induced_subgraph(comp)
            have: dict[object, int] = {}
            for v in sub.vertices():
                lab = sub.label(v)
                have[lab] = have.get(lab, 0) + 1
            if any(have.get(lab, 0) < k for lab, k in need.items()):
                continue
            # remap to original stored-graph IDs for reporting
            back = {
                new: inverse[old] for old, new in sub_map.items()
            }
            components.append((sub, back))
        components.sort(key=lambda item: (item[0].order, min(item[1].values())))
        return components

    @staticmethod
    def root_slices(
        comp_index: GraphIndex,
        query: LabeledGraph,
        num_slices: int = DEFAULT_ROOT_SLICES,
    ) -> list[tuple[int, ...]]:
        """Partition a component's VF2 root candidates into work chunks.

        Grapes' multithreaded verification distributes the candidate
        start vertices of the query's first vertex across its threads.
        Slices are contiguous ID ranges, so running them in sequence
        reproduces exactly the single-threaded VF2 visit order (and step
        count), while scheduling them over T workers models Grapes/T.
        """
        roots = comp_index.candidates_by_label(query.label(0))
        if not roots:
            return []
        num_slices = max(1, min(num_slices, len(roots)))
        size, extra = divmod(len(roots), num_slices)
        slices = []
        start = 0
        for i in range(num_slices):
            end = start + size + (1 if i < extra else 0)
            slices.append(tuple(roots[start:end]))
            start = end
        return [s for s in slices if s]

    def verification_tasks(
        self, query: LabeledGraph, graph_id: int
    ):
        """Work chunks for one (query, graph) verification.

        Returns a list of callables ``task(allowance) -> TaskResult``,
        one per (relevant component, root slice); scheduling them over
        ``threads`` workers with first-match early termination is the
        Grapes/T verification.  Exposed so harnesses can share chunk
        costs between thread counts.
        """
        components = self.relevant_components(query, graph_id)
        tasks = []
        for sub, _ in components:
            comp_index = GraphIndex(sub)
            for roots in self.root_slices(comp_index, query):
                tasks.append(self._make_task(comp_index, query, roots))
        return tasks

    def _make_task(
        self,
        comp_index: GraphIndex,
        query: LabeledGraph,
        roots: tuple[int, ...],
    ):
        verifier = self._verifier

        def run(allowance: int) -> TaskResult:
            gen = verifier.engine(
                comp_index, query, max_embeddings=1, root_candidates=roots
            )
            outcome = drive(gen, Budget(max_steps=max(1, allowance)))
            return TaskResult(
                steps=outcome.steps,
                found=outcome.found,
                killed=outcome.killed,
            )

        return run

    def verify(
        self,
        query: LabeledGraph,
        graph_id: int,
        budget: Optional[Budget] = None,
    ) -> VerificationReport:
        """Decision test over the relevant components, ``threads``-wide.

        Execution time is the simulated parallel schedule time of the
        (component, root-slice) work chunks (first-match early
        termination); with ``threads=1`` this is exactly the sequential
        VF2 cost over the components in order.
        """
        tasks = self.verification_tasks(query, graph_id)
        if not tasks:
            return VerificationReport(
                graph_id=graph_id, matched=False, steps=0, killed=False,
                components_tried=0,
            )
        cap = budget.max_steps if budget and budget.max_steps else None
        schedule = first_match_schedule(
            tasks, workers=self.threads, budget_steps=cap
        )
        return VerificationReport(
            graph_id=graph_id,
            matched=schedule.found,
            steps=schedule.time,
            killed=schedule.killed,
            components_tried=schedule.executed,
        )
