"""FTV method base: filter-then-verify over a graph collection.

FTV methods (paper §2.1) answer the *decision* problem: given a dataset
of many graphs and a query, which graphs contain the query?  They work
in two stages — an offline index over path features, and online
filtering + VF2 verification.  The paper's performance metrics count
**pure sub-iso (verification) time only** ("excluding the index loading
and filtering times, which add only a trivial overhead", §3.5); this
base class follows that convention: :meth:`verify` reports only VF2
steps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph
from ..matching import Budget, GraphIndex, MatchOutcome, VF2Matcher
from .features import PathCensus, label_path_census

__all__ = ["FTVIndex", "VerificationReport", "FTVQueryResult"]


@dataclass
class VerificationReport:
    """Verification outcome for one (query, stored graph) pair.

    ``steps`` is the pair's execution time in engine steps — for
    multithreaded Grapes this is the *simulated parallel* time, not the
    total work.  Killed pairs are charged the budget, per the paper's
    600''-convention (see :meth:`charged_steps`).
    """

    graph_id: int
    matched: bool
    steps: int
    killed: bool
    components_tried: int = 0

    def charged_steps(self, budget: Optional[Budget]) -> int:
        """Steps to charge in metrics (budget value when killed)."""
        if self.killed and budget is not None and budget.max_steps:
            return budget.max_steps
        return self.steps


@dataclass
class FTVQueryResult:
    """Full decision-query result over the dataset."""

    candidate_ids: list[int]
    reports: list[VerificationReport] = field(default_factory=list)

    @property
    def matching_ids(self) -> list[int]:
        """IDs of graphs verified to contain the query."""
        return [r.graph_id for r in self.reports if r.matched]

    @property
    def total_steps(self) -> int:
        """Sum of per-pair verification times."""
        return sum(r.steps for r in self.reports)


class FTVIndex(ABC):
    """Shared scaffolding for Grapes and GGSX.

    Parameters
    ----------
    graphs:
        The stored dataset; graph IDs are positions in this list.
    max_path_length:
        Maximum feature path length in edges (the paper indexes paths up
        to length 4; the scaled default here is 3 — see DESIGN.md §2).
    """

    method_name: str = "FTV"

    def __init__(
        self,
        graphs: list[LabeledGraph],
        max_path_length: int = 3,
    ) -> None:
        if not graphs:
            raise ValueError("empty dataset")
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        self.graphs = list(graphs)
        self.max_path_length = max_path_length
        self._verifier = VF2Matcher()
        self._graph_indexes: dict[int, GraphIndex] = {}
        self._build()

    # ------------------------------------------------------------------
    # offline stage
    # ------------------------------------------------------------------

    @abstractmethod
    def _build(self) -> None:
        """Construct the feature index (un-budgeted, per the paper)."""

    # ------------------------------------------------------------------
    # online stage
    # ------------------------------------------------------------------

    def query_census(self, query: LabeledGraph) -> PathCensus:
        """The query's own path features (the "query index")."""
        return label_path_census(
            query, self.max_path_length, with_locations=False
        )

    @abstractmethod
    def filter(self, query: LabeledGraph) -> list[int]:
        """Candidate graph IDs after feature + frequency pruning."""

    @abstractmethod
    def verify(
        self,
        query: LabeledGraph,
        graph_id: int,
        budget: Optional[Budget] = None,
    ) -> VerificationReport:
        """Sub-iso decision test of ``query`` against one stored graph."""

    def query(
        self,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
    ) -> FTVQueryResult:
        """Decision query over the whole dataset.

        Each candidate pair is verified under its own ``budget``,
        matching the paper's per-(query, graph) measurement protocol
        (§4: "we execute each individual query against a single stored
        graph at a time").
        """
        candidates = self.filter(query)
        result = FTVQueryResult(candidate_ids=candidates)
        for gid in candidates:
            result.reports.append(self.verify(query, gid, budget))
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def graph_index(self, graph_id: int) -> GraphIndex:
        """Cached per-stored-graph VF2 index."""
        index = self._graph_indexes.get(graph_id)
        if index is None:
            index = self._verifier.prepare(self.graphs[graph_id])
            self._graph_indexes[graph_id] = index
        return index

    def _decision_outcome(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_steps: int,
    ) -> MatchOutcome:
        """First-match VF2 run capped at ``max_steps``."""
        budget = Budget(max_steps=max_steps) if max_steps < (1 << 62) else None
        return self._verifier.decide(index, query, budget=budget)
