"""FTV method base: filter-then-verify over a graph collection.

FTV methods (paper §2.1) answer the *decision* problem: given a dataset
of many graphs and a query, which graphs contain the query?  They work
in two stages — an offline index over path features, and online
filtering + VF2 verification.  The paper's performance metrics count
**pure sub-iso (verification) time only** ("excluding the index loading
and filtering times, which add only a trivial overhead", §3.5); this
base class follows that convention: :meth:`verify` reports only VF2
steps.

Equivalence invariants: :meth:`FTVIndex.filter` is deterministic (same
graphs + query -> same ascending candidate ids on any machine) and
per-graph (a graph's membership never depends on the rest of the
collection — the property sharded catalogs rely on); the bitset fast
path must return exactly what :meth:`FTVIndex.filter_reference`'s seed
set algebra returns, and the census memo layers must never change a
candidate set, only skip recomputing it.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph, bits_ascending
from ..matching import Budget, GraphIndex, MatchOutcome, VF2Matcher
from .features import (
    LabelInterner,
    PathCensus,
    coded_path_census,
    label_path_census,
)
from .trie import PathTrie

__all__ = ["FTVIndex", "VerificationReport", "FTVQueryResult"]

#: LRU capacity of the per-index canonical-form census cache.
DEFAULT_CENSUS_CACHE_CAP = 512

#: sentinel distinguishing "shape never seen" from "stash promoted"
_NEVER_SEEN = object()


@dataclass
class VerificationReport:
    """Verification outcome for one (query, stored graph) pair.

    ``steps`` is the pair's execution time in engine steps — for
    multithreaded Grapes this is the *simulated parallel* time, not the
    total work.  Killed pairs are charged the budget, per the paper's
    600''-convention (see :meth:`charged_steps`).
    """

    graph_id: int
    matched: bool
    steps: int
    killed: bool
    components_tried: int = 0

    def charged_steps(self, budget: Optional[Budget]) -> int:
        """Steps to charge in metrics (budget value when killed)."""
        if self.killed and budget is not None and budget.max_steps:
            return budget.max_steps
        return self.steps


@dataclass
class FTVQueryResult:
    """Full decision-query result over the dataset."""

    candidate_ids: list[int]
    reports: list[VerificationReport] = field(default_factory=list)

    @property
    def matching_ids(self) -> list[int]:
        """IDs of graphs verified to contain the query."""
        return [r.graph_id for r in self.reports if r.matched]

    @property
    def total_steps(self) -> int:
        """Sum of per-pair verification times."""
        return sum(r.steps for r in self.reports)


class FTVIndex(ABC):
    """Shared scaffolding for Grapes and GGSX.

    Parameters
    ----------
    graphs:
        The stored dataset; graph IDs are positions in this list.
    max_path_length:
        Maximum feature path length in edges (the paper indexes paths up
        to length 4; the scaled default here is 3 — see DESIGN.md §2).
    restore:
        Dumped trie postings (``repro.store`` boot path).  When given,
        the trie is reconstructed by raw re-insertion of the dump
        instead of running the path-census ``_build`` — O(read)
        instead of O(DFS), and bit-identical because label codes are a
        pure function of the graphs' sorted label set.
    """

    method_name: str = "FTV"

    #: trie type :meth:`_restore` instantiates (subclasses override)
    trie_class: type = PathTrie

    def __init__(
        self,
        graphs: list[LabeledGraph],
        max_path_length: int = 3,
        restore: Optional[list] = None,
    ) -> None:
        if not graphs:
            raise ValueError("empty dataset")
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        self.graphs = list(graphs)
        self.max_path_length = max_path_length
        #: graph ids removed from the live collection.  Stable-id
        #: discipline: ids are positions in ``graphs`` forever — a
        #: remove tombstones the slot (postings deleted, candidates
        #: exclude it) instead of renumbering the survivors, so shard
        #: assignments, id maps, and step bills stay valid.
        self.tombstones: set[int] = set()
        self._verifier = VF2Matcher()
        #: shared label interner: the trie and every census speak codes
        self.interner = LabelInterner(g.labels for g in graphs)
        #: namespace token for this index's query-census memo entries
        #: in the process-wide PrepareCache (unique per index, so two
        #: indexes over the same graphs never cross-hit)
        self._census_token = object()
        #: canonical form -> coded census, shared by isomorphic repeats
        self._canon_census: "OrderedDict[tuple, PathCensus]" = OrderedDict()
        #: cheap isomorphism-invariant shapes seen so far: the gate
        #: that keeps canonicalisation off the cold path (see
        #: :meth:`coded_query_census`)
        self._census_shapes: "OrderedDict[tuple, bool]" = OrderedDict()
        # deferred import: repro.caching imports this module at load
        from ..caching import CacheStats

        self.census_stats = CacheStats()
        if restore is None:
            self._build()
        else:
            self._restore(restore)

    # ------------------------------------------------------------------
    # offline stage
    # ------------------------------------------------------------------

    @abstractmethod
    def _build(self) -> None:
        """Construct the feature index (un-budgeted, per the paper)."""

    def _restore(self, postings: list) -> None:
        """Rebuild the trie from dumped postings (store boot path).

        Each row is ``(coded path, [(graph_id, count, locations)])``
        exactly as :func:`repro.store.codec.dump_postings` emitted it.
        Re-insertion is pinned to the **raw** :meth:`PathTrie.insert`
        (bound explicitly): a :class:`~repro.indexing.trie.SuffixTrie`'s
        own ``insert`` expands suffixes, and the dump already contains
        every expansion — routing rows through it would double count.
        """
        self.trie = self.trie_class()
        insert = PathTrie.insert.__get__(self.trie, type(self.trie))
        for seq, rows in postings:
            key = tuple(seq)
            for gid, count, locations in rows:
                insert(key, gid, count, frozenset(locations))

    def _index_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        """Insert one graph's features (the incremental-add unit).

        Subclasses implement this as the body of their ``_build`` loop;
        :meth:`add_graph` calls it for newcomers so a mutation costs
        one census DFS, not a collection rewarm.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental adds"
        )

    # ------------------------------------------------------------------
    # dynamic collection (incremental index maintenance)
    # ------------------------------------------------------------------

    def live_ids(self) -> list[int]:
        """Non-tombstoned graph ids, ascending."""
        return [
            gid for gid in range(len(self.graphs))
            if gid not in self.tombstones
        ]

    def add_graph(
        self, graph: LabeledGraph, graph_id: Optional[int] = None
    ) -> int:
        """Index ``graph`` incrementally; returns its stable id.

        A fresh add appends (``id == len(graphs)``); passing the id of
        a tombstoned slot *revives* it (the add→remove→re-add drill).
        Novel labels extend the interner with appended codes — probe
        keys are canonicalized in code space, so existing trie nodes
        and sealed masks stay valid.  Touched trie nodes unseal on
        insert and reseal on the next :meth:`warm` (or lazily on first
        probe); the census memo layers are invalidated because stale
        entries hold negative codes for now-known labels and stale
        ``candidates`` sets.
        """
        if graph_id is None:
            graph_id = len(self.graphs)
            self.graphs.append(graph)
        elif graph_id == len(self.graphs):
            self.graphs.append(graph)
        elif 0 <= graph_id < len(self.graphs):
            if graph_id not in self.tombstones:
                raise ValueError(
                    f"graph id {graph_id} is live; remove it before "
                    "re-adding"
                )
            self.graphs[graph_id] = graph
            self.tombstones.discard(graph_id)
        else:
            raise ValueError(
                f"graph id {graph_id} out of range for "
                f"{len(self.graphs)} slots"
            )
        self.interner.extend([graph.labels])
        self._index_graph(graph_id, graph)
        self._invalidate_censuses()
        return graph_id

    def remove_graph(self, graph_id: int) -> int:
        """Tombstone ``graph_id``; returns the postings deleted.

        The slot (and the graph object in it) stays, so positional ids
        never shift; only the index forgets it — every posting is
        deleted and touched nodes unseal, so no filter can ever emit
        the id again.
        """
        if not 0 <= graph_id < len(self.graphs):
            raise ValueError(
                f"graph id {graph_id} out of range for "
                f"{len(self.graphs)} slots"
            )
        if graph_id in self.tombstones:
            raise ValueError(f"graph id {graph_id} already removed")
        self.tombstones.add(graph_id)
        removed = self.trie.remove_graph(graph_id)
        self._invalidate_censuses()
        return removed

    def _invalidate_censuses(self) -> None:
        """Drop every memoized census (collection state changed).

        Stale censuses are dangerous two ways: they hold *negative*
        codes for labels the collection may now intern, and their
        ``candidates`` memo may include removed ids.  A fresh token
        orphans the prepare-cache namespace; the canonical-form LRU
        and the shape gate are cleared outright.
        """
        self._census_token = object()
        self._canon_census.clear()
        self._census_shapes.clear()

    # ------------------------------------------------------------------
    # online stage
    # ------------------------------------------------------------------

    def query_census(self, query: LabeledGraph) -> PathCensus:
        """The query's label-space path features (reference census).

        This is the seed implementation, kept as the equivalence
        baseline; the serving path uses :meth:`coded_query_census`.
        """
        return label_path_census(
            query, self.max_path_length, with_locations=False
        )

    def coded_query_census(self, query: LabeledGraph) -> PathCensus:
        """The query's interned-int census, memoized two ways.

        * **Per instance** — through :data:`repro.caching.prepare_cache`
          (the graph-side memo), so the census survives across
          ``filter`` and per-candidate ``relevant_components`` calls on
          the same query object;
        * **per isomorphism class** — an LRU keyed by the canonical
          form from :mod:`repro.service.canon`, so a permuted re-issue
          of a motif skips the path enumeration entirely.  Sound
          because the census counts are isomorphism-invariant (the
          location side is never populated for queries), and the fresh
          negative codes of unknown labels never reach the trie, so
          their identity across instances is irrelevant.

        Canonicalisation is *gated* behind a cheap invariant shape
        fingerprint: the first sighting of a shape computes its census
        directly (a unique query never pays the canonical form — on
        small queries canonicalisation costs as much as the census it
        would save); once a shape repeats, its class goes through the
        canonical-form cache and every further isomorphic instance
        reuses the stored census.
        """
        from ..caching import prepare_cache  # deferred: caching imports us

        return prepare_cache.get(
            query,
            ("ftv-census", self._census_token, self.max_path_length),
            lambda: self._canon_shared_census(query),
        )

    def _census_fingerprint(self, query: LabeledGraph) -> tuple:
        """Cheap isomorphism-invariant shape key (collisions allowed).

        Twins must collide (or sharing is merely missed); unrelated
        collisions only cost one canonicalisation — soundness always
        comes from the exact canonical form.
        """
        codes = self.interner.encode_vertices(query.labels)
        return (
            query.order,
            query.size,
            tuple(sorted(codes)),
            tuple(sorted(query.degree(v) for v in query.vertices())),
        )

    def _canon_shared_census(self, query: LabeledGraph) -> PathCensus:
        fingerprint = self._census_fingerprint(query)
        shapes = self._census_shapes
        stash = shapes.get(fingerprint, _NEVER_SEEN)
        if stash is _NEVER_SEEN:
            # first sighting of this shape: census directly, stash it
            # (weakly — never pin a caller-owned query graph) so the
            # class promotes to canonical keying on a repeat
            self.census_stats.misses += 1
            codes = self.interner.encode_vertices(query.labels)
            census = coded_path_census(query, self.max_path_length, codes)
            shapes[fingerprint] = (weakref.ref(query), census)
            if len(shapes) > 4 * DEFAULT_CENSUS_CACHE_CAP:
                shapes.popitem(last=False)
            return census
        shapes.move_to_end(fingerprint)

        from ..service.canon import canonical_query_key  # deferred

        if stash is not None:
            # the shape just repeated: file the stashed first-instance
            # census under its canonical form, then drop the stash.
            # Promotion witness: ``add_edge`` is the only graph
            # mutator and strictly grows ``size``, so an order/size
            # match proves the stashed census still describes the
            # graph we are about to canonicalise; a dead weakref or a
            # mutated graph simply forfeits the promotion (the current
            # instance's census is stored under its own key below).
            first_ref, first_census = stash
            shapes[fingerprint] = None
            first_query = first_ref()
            if (
                first_query is not None
                and first_query.order == fingerprint[0]
                and first_query.size == fingerprint[1]
            ):
                first_canon = canonical_query_key(first_query)
                if first_canon is not None:
                    self._store_canon_census(first_canon, first_census)
        canon = canonical_query_key(query)
        if canon is not None:
            hit = self._canon_census.get(canon)
            if hit is not None:
                self._canon_census.move_to_end(canon)
                self.census_stats.hits += 1
                return hit
        self.census_stats.misses += 1
        codes = self.interner.encode_vertices(query.labels)
        census = coded_path_census(query, self.max_path_length, codes)
        if canon is not None:
            self._store_canon_census(canon, census)
        return census

    def _store_canon_census(self, canon: tuple, census: PathCensus) -> None:
        self._canon_census[canon] = census
        self._canon_census.move_to_end(canon)
        if len(self._canon_census) > DEFAULT_CENSUS_CACHE_CAP:
            self._canon_census.popitem(last=False)
            self.census_stats.evictions += 1

    def _bitset_filter(self, query: LabeledGraph) -> list[int]:
        """Shared filter fast path: a fold of bitwise ANDs.

        Each query feature contributes one threshold mask (graphs
        holding the feature often enough); masks are intersected
        rarest-first (ascending popcount) so the fold collapses to zero
        as early as possible.  Intersection is commutative, so the
        surviving set — and the ascending-bit extraction below — is
        identical to the reference set-based filter for every probe
        order, and always sorted and duplicate-free.
        """
        census = self.coded_query_census(query)
        cached = census.candidates
        if cached is not None:
            return list(cached)
        census.candidates = out = self._fold_masks(census.counts)
        return list(out)

    def _fold_masks(self, counts: dict) -> list[int]:
        if not counts:
            return []
        trie_mask_ge = self.trie.mask_ge
        masks = []
        for seq, needed in counts.items():
            mask = trie_mask_ge(seq, needed)
            if not mask:
                return []
            masks.append(mask)
        masks.sort(key=int.bit_count)
        alive = masks[0]
        for mask in masks[1:]:
            alive &= mask
            if not alive:
                return []
        return list(bits_ascending(alive))

    def filter_reference(self, query: LabeledGraph) -> list[int]:
        """The seed filter: label census + posting-dict set algebra.

        Kept verbatim (modulo the label->code translation the int-keyed
        trie requires) as the equivalence baseline and the filter
        benchmark's pre-fast-path cost model.
        """
        census = self.query_census(query)
        alive: Optional[set[int]] = None
        for seq, needed in census.counts.items():
            coded = self.interner.encode_sequence(seq)
            postings = (
                self.trie.lookup(coded) if coded is not None else {}
            )
            ok = {
                gid for gid, p in postings.items() if p.count >= needed
            }
            alive = ok if alive is None else (alive & ok)
            if not alive:
                return []
        return sorted(alive) if alive else []

    def warm(self) -> dict:
        """Eagerly build the trie's threshold masks (catalog warmup).

        Returns size statistics so operators can see what keeping the
        posting bitsets warm costs.  Idempotent; purely a warm-start —
        lazy sealing on first probe yields identical masks.
        """
        return {
            "sealed_nodes": self.trie.seal(),
            "trie_nodes": self.trie.node_count,
            "labels": len(self.interner),
        }

    def census_cache_metrics(self) -> dict:
        """Counter snapshot of the canonical-form census cache."""
        out = self.census_stats.as_metrics()
        out["entries"] = len(self._canon_census)
        return out

    @abstractmethod
    def filter(self, query: LabeledGraph) -> list[int]:
        """Candidate graph IDs after feature + frequency pruning."""

    @abstractmethod
    def verify(
        self,
        query: LabeledGraph,
        graph_id: int,
        budget: Optional[Budget] = None,
    ) -> VerificationReport:
        """Sub-iso decision test of ``query`` against one stored graph."""

    def query(
        self,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
    ) -> FTVQueryResult:
        """Decision query over the whole dataset.

        Each candidate pair is verified under its own ``budget``,
        matching the paper's per-(query, graph) measurement protocol
        (§4: "we execute each individual query against a single stored
        graph at a time").
        """
        candidates = self.filter(query)
        result = FTVQueryResult(candidate_ids=candidates)
        for gid in candidates:
            result.reports.append(self.verify(query, gid, budget))
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def graph_index(self, graph_id: int) -> GraphIndex:
        """Cached per-stored-graph VF2 index.

        Memoized solely through :data:`repro.caching.prepare_cache`
        (graph-side storage): reuse shows up in the cache's hit
        counters instead of being swallowed by a private dict, and a
        catalog eviction that drops the graph's memo entries actually
        frees the index instead of leaving a shadow copy here.
        """
        return self._verifier.prepare(self.graphs[graph_id])

    def _decision_outcome(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_steps: int,
    ) -> MatchOutcome:
        """First-match VF2 run capped at ``max_steps``."""
        budget = Budget(max_steps=max_steps) if max_steps < (1 << 62) else None
        return self._verifier.decide(index, query, budget=budget)
