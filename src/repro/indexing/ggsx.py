"""GGSX FTV index (Bonnici et al., PRIB 2010).

Per the paper's §3.1.1: GGSX indexes DFS paths up to a maximum length in
a **suffix tree**, does *not* keep location information, and after
matching the query's maximal paths against the index (plus frequency
pruning) forms its candidate set — each candidate then undergoes a VF2
decision test **against the whole stored graph**.

The missing location information is exactly why GGSX stragglers are so
much worse than Grapes' in the paper's Figures 1 and 3 (GGSX's
(max/min)QLA on PPI reaches 12,000,000x): every verification faces the
full graph instead of a small relevant component.

Determinism/equivalence: like every FTV index, GGSX filtering is a
pure per-graph predicate over (graph features, query census) — see the
invariants in :mod:`repro.indexing.base` — so candidate sets are
machine-independent and shard-decomposable, and the suffix-trie bitset
path must agree bit-for-bit with ``filter_reference``.
"""

from __future__ import annotations

from typing import Optional

from ..graphs import LabeledGraph
from ..matching import Budget
from .base import FTVIndex, VerificationReport
from .features import coded_path_census
from .trie import SuffixTrie

__all__ = ["GGSXIndex"]


class GGSXIndex(FTVIndex):
    """GGSX: suffix-trie path index, whole-graph verification."""

    method_name = "GGSX"

    #: store-restore instantiates this, but re-inserts dumped postings
    #: through the raw ``PathTrie.insert`` — the dump already holds
    #: every expanded suffix (see :meth:`FTVIndex._restore`)
    trie_class = SuffixTrie

    def _build(self) -> None:
        self.trie = SuffixTrie()
        for gid, graph in enumerate(self.graphs):
            self._index_graph(gid, graph)

    def _index_graph(self, graph_id: int, graph: LabeledGraph) -> None:
        census = coded_path_census(
            graph,
            self.max_path_length,
            self.interner.encode_vertices(graph.labels),
        )
        for seq, count in census.counts.items():
            self.trie.insert(seq, graph_id, count)

    def filter(self, query: LabeledGraph) -> list[int]:
        """Candidates containing every query feature often enough.

        Suffix postings make counts over-estimates for sub-paths (a
        feature inserted as a suffix of several longer paths accumulates
        all their counts), which keeps the filter sound — it can only
        under-prune relative to Grapes, consistent with GGSX forming
        larger candidate sets.  Runs on the shared bitset fast path
        (see :meth:`FTVIndex.filter_reference` for the seed algebra).
        """
        return self._bitset_filter(query)

    def verify(
        self,
        query: LabeledGraph,
        graph_id: int,
        budget: Optional[Budget] = None,
    ) -> VerificationReport:
        """First-match VF2 against the whole stored graph."""
        index = self.graph_index(graph_id)
        outcome = self._verifier.decide(index, query, budget=budget)
        return VerificationReport(
            graph_id=graph_id,
            matched=outcome.found,
            steps=outcome.steps,
            killed=outcome.killed,
            components_tried=1,
        )
