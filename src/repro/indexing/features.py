"""Path-feature extraction for the FTV indexes.

Both FTV methods studied in the paper index "the simplest form of
features — i.e., paths — up to a maximum length", found "in a DFS
manner" (§3.1.1).  This module provides the shared census machinery:

* :func:`label_path_census` enumerates every simple path of up to
  ``max_length`` edges in a graph and aggregates them by **label
  sequence**, counting occurrences and (optionally, for Grapes) the set
  of vertices touched by each feature — the *location information* that
  lets Grapes verify on small connected components instead of whole
  graphs.

A label sequence and its reverse denote the same undirected feature, so
sequences are canonicalised to the lexicographically smaller direction.
Every undirected path is discovered once per direction, so occurrence
counts are consistently doubled on both the index side and the query
side, keeping the count-based pruning sound.
"""

from __future__ import annotations

from ..graphs import LabeledGraph

__all__ = ["canonical_sequence", "label_path_census", "PathCensus"]

LabelSeq = tuple


def canonical_sequence(labels: LabelSeq) -> LabelSeq:
    """Canonical direction of an undirected label sequence.

    Labels within one dataset are homogeneous (strings in all builders),
    so plain tuple comparison is well-defined; a ``repr`` fallback keeps
    the function total for exotic mixed-label graphs.
    """
    rev = labels[::-1]
    try:
        return labels if labels <= rev else rev
    except TypeError:
        return labels if repr(labels) <= repr(rev) else rev


class PathCensus:
    """Census of label paths in one graph.

    Attributes
    ----------
    counts:
        Canonical label sequence -> number of directed occurrences.
    locations:
        Canonical label sequence -> frozenset of vertices appearing in
        any occurrence (only populated when ``with_locations``).
    """

    __slots__ = ("counts", "locations")

    def __init__(
        self,
        counts: dict[LabelSeq, int],
        locations: dict[LabelSeq, frozenset[int]],
    ) -> None:
        self.counts = counts
        self.locations = locations

    def features(self) -> tuple[LabelSeq, ...]:
        """All canonical label sequences, deterministic order."""
        return tuple(sorted(self.counts, key=repr))


def label_path_census(
    graph: LabeledGraph,
    max_length: int,
    with_locations: bool = False,
) -> PathCensus:
    """Enumerate simple label paths of 0..``max_length`` edges.

    DFS from every vertex; a "path" is a sequence of distinct vertices
    joined by edges.  Length-0 paths are single vertices, so the census
    subsumes plain label-frequency statistics.
    """
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    counts: dict[LabelSeq, int] = {}
    locs: dict[LabelSeq, set[int]] = {}

    def visit(labels: LabelSeq, path: tuple[int, ...]) -> None:
        key = canonical_sequence(labels)
        counts[key] = counts.get(key, 0) + 1
        if with_locations:
            locs.setdefault(key, set()).update(path)

    # iterative DFS over simple paths
    for start in graph.vertices():
        stack: list[tuple[tuple[int, ...], LabelSeq]] = [
            ((start,), (graph.label(start),))
        ]
        while stack:
            path, labels = stack.pop()
            visit(labels, path)
            if len(path) - 1 == max_length:
                continue
            tail = path[-1]
            on_path = set(path)
            for w in graph.neighbors(tail):
                if w not in on_path:
                    stack.append(
                        (path + (w,), labels + (graph.label(w),))
                    )
    return PathCensus(
        counts,
        {k: frozenset(v) for k, v in locs.items()},
    )
