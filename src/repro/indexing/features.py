"""Path-feature extraction for the FTV indexes.

Both FTV methods studied in the paper index "the simplest form of
features — i.e., paths — up to a maximum length", found "in a DFS
manner" (§3.1.1).  This module provides the shared census machinery:

* :func:`label_path_census` enumerates every simple path of up to
  ``max_length`` edges in a graph and aggregates them by **label
  sequence**, counting occurrences and (optionally, for Grapes) the set
  of vertices touched by each feature — the *location information* that
  lets Grapes verify on small connected components instead of whole
  graphs.
* :func:`coded_path_census` is the same census in **interned-int
  space**: labels are first mapped to dense codes by a shared
  :class:`LabelInterner`, so the census keys are small-int tuples
  (cheap to hash, compare, and reverse) instead of arbitrary label
  tuples.  This is the filter fast path's census; the label-space
  census remains as the reference implementation the equivalence suite
  checks against.

A label sequence and its reverse denote the same undirected feature, so
sequences are canonicalised to the lexicographically smaller direction.
Both censuses canonicalise in their own key space; the *classes*
(a sequence together with its reverse) are identical either way, which
is all the count/lookup pruning relies on.  Every undirected path is
discovered once per direction, so occurrence counts are consistently
doubled on both the index side and the query side, keeping the
count-based pruning sound.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..graphs import LabeledGraph

__all__ = [
    "canonical_sequence",
    "label_path_census",
    "coded_path_census",
    "PathCensus",
    "LabelInterner",
]

LabelSeq = tuple


def canonical_sequence(labels: LabelSeq) -> LabelSeq:
    """Canonical direction of an undirected label sequence.

    Labels within one dataset are homogeneous (strings in all builders),
    so plain tuple comparison is well-defined; a ``repr`` fallback keeps
    the function total for exotic mixed-label graphs.
    """
    rev = labels[::-1]
    try:
        return labels if labels <= rev else rev
    except TypeError:
        return labels if repr(labels) <= repr(rev) else rev


class PathCensus:
    """Census of label paths in one graph.

    Attributes
    ----------
    counts:
        Canonical label sequence -> number of directed occurrences.
    locations:
        Canonical label sequence -> frozenset of vertices appearing in
        any occurrence (only populated when ``with_locations``).
    candidates:
        Memoized filter output against one index's trie (set by
        :meth:`repro.indexing.base.FTVIndex._bitset_filter`).  Sound to
        cache here because query censuses live in exactly one index's
        census cache and FTV tries are immutable after ``_build`` — and
        the candidate set, like the census, is an isomorphism
        invariant, so it transfers to every instance sharing this
        census.
    location_unions:
        Memoized per-stored-graph unions of the query features'
        location sets (set by
        :meth:`repro.indexing.grapes.GrapesIndex.feature_locations`) —
        isomorphism-invariant for the same reason as ``candidates``.
    """

    __slots__ = ("counts", "locations", "candidates", "location_unions")

    def __init__(
        self,
        counts: dict[LabelSeq, int],
        locations: dict[LabelSeq, frozenset[int]],
    ) -> None:
        self.counts = counts
        self.locations = locations
        self.candidates: list[int] | None = None
        self.location_unions: dict[int, frozenset[int]] | None = None

    def features(self) -> tuple[LabelSeq, ...]:
        """All canonical label sequences, deterministic order."""
        return tuple(sorted(self.counts, key=repr))


def label_path_census(
    graph: LabeledGraph,
    max_length: int,
    with_locations: bool = False,
) -> PathCensus:
    """Enumerate simple label paths of 0..``max_length`` edges.

    DFS from every vertex; a "path" is a sequence of distinct vertices
    joined by edges.  Length-0 paths are single vertices, so the census
    subsumes plain label-frequency statistics.
    """
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    counts: dict[LabelSeq, int] = {}
    locs: dict[LabelSeq, set[int]] = {}

    def visit(labels: LabelSeq, path: tuple[int, ...]) -> None:
        key = canonical_sequence(labels)
        counts[key] = counts.get(key, 0) + 1
        if with_locations:
            locs.setdefault(key, set()).update(path)

    # iterative DFS over simple paths
    for start in graph.vertices():
        stack: list[tuple[tuple[int, ...], LabelSeq]] = [
            ((start,), (graph.label(start),))
        ]
        while stack:
            path, labels = stack.pop()
            visit(labels, path)
            if len(path) - 1 == max_length:
                continue
            tail = path[-1]
            on_path = set(path)
            for w in graph.neighbors(tail):
                if w not in on_path:
                    stack.append(
                        (path + (w,), labels + (graph.label(w),))
                    )
    return PathCensus(
        counts,
        {k: frozenset(v) for k, v in locs.items()},
    )


class LabelInterner:
    """Dense int codes for the labels of a stored-graph collection.

    Codes are assigned in the labels' **natural sort order** (falling
    back to ``repr`` order for label sets that are not mutually
    comparable), so the assignment is deterministic, independent of
    graph order and hash seeds — and, crucially, *order-preserving*:
    for the homogeneous label sets every dataset uses, comparing code
    tuples picks the same canonical path direction
    :func:`canonical_sequence` picks on the labels themselves.  The
    suffix-trie build (GGSX) inserts the suffixes of the canonical
    representative, so this is what keeps coded candidate sets
    bit-for-bit equal to the label-space seed.  Query labels absent
    from the collection are mapped to *fresh negative codes*: negative
    codes can never collide with an indexed feature, so a query
    feature touching an unknown label misses the trie exactly like its
    label-space twin would — no special-casing in the filter.
    """

    __slots__ = ("code_of",)

    def __init__(self, label_sets: Iterable[Iterable]) -> None:
        labels = set()
        for ls in label_sets:
            labels.update(ls)
        try:
            ordered = sorted(labels)
        except TypeError:  # mixed unsortable labels: repr fallback
            ordered = sorted(labels, key=repr)
        self.code_of = {
            lab: code for code, lab in enumerate(ordered)
        }

    def __len__(self) -> int:
        return len(self.code_of)

    def extend(self, label_sets: Iterable[Iterable]) -> int:
        """Append codes for labels the collection has not seen yet.

        The dynamic-collection hook: an ``add_graph`` may introduce
        labels, and those get the *next* dense codes (sorted among
        themselves for determinism) rather than re-sorting the whole
        space — existing codes never move, so every already-built trie
        node, sealed mask, and sketch bucket stays valid.  Probe keys
        are canonicalized in code space on both census paths, so an
        appended (non-sort-order) code is internally consistent; it
        merely picks a different — equally valid — canonical direction
        than a from-scratch interner would.  Returns the number of new
        labels interned.
        """
        fresh = set()
        for ls in label_sets:
            for lab in ls:
                if lab not in self.code_of:
                    fresh.add(lab)
        try:
            ordered = sorted(fresh)
        except TypeError:  # mixed unsortable labels: repr fallback
            ordered = sorted(fresh, key=repr)
        base = len(self.code_of)
        for offset, lab in enumerate(ordered):
            self.code_of[lab] = base + offset
        return len(ordered)

    def encode_vertices(self, labels: Sequence) -> tuple[int, ...]:
        """Per-vertex codes; unknown labels get fresh negative codes."""
        code_of = self.code_of
        fresh: dict = {}
        out = []
        for lab in labels:
            code = code_of.get(lab)
            if code is None:
                code = fresh.get(lab)
                if code is None:
                    code = -1 - len(fresh)
                    fresh[lab] = code
            out.append(code)
        return tuple(out)

    def encode_sequence(self, seq: LabelSeq) -> LabelSeq | None:
        """Canonical coded form of a label sequence.

        ``None`` when any label is unknown to the collection (such a
        feature cannot be indexed).  Used by the reference filter to
        probe the int-keyed trie from a label-space census.
        """
        code_of = self.code_of
        coded = []
        for lab in seq:
            code = code_of.get(lab)
            if code is None:
                return None
            coded.append(code)
        return canonical_sequence(tuple(coded))


def coded_path_census(
    graph: LabeledGraph,
    max_length: int,
    codes: Sequence[int],
    with_locations: bool = False,
) -> PathCensus:
    """The path census of :func:`label_path_census` in interned space.

    ``codes`` is the per-vertex label-code sequence (see
    :class:`LabelInterner`).  The enumeration order and the doubled
    occurrence counts are identical to the label-space census; only the
    key space changes, so the feature *classes* — and therefore every
    count/lookup pruning decision — match the reference bit for bit.
    """
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    counts: dict[LabelSeq, int] = {}
    locs: dict[LabelSeq, set[int]] = {}
    adjacency = graph.adjacency()
    get = counts.get
    for start in range(graph.order):
        # the single-vertex path, counted once
        key0 = (codes[start],)
        counts[key0] = get(key0, 0) + 1
        if with_locations:
            seen = locs.get(key0)
            if seen is None:
                seen = locs[key0] = set()
            seen.add(start)
        if max_length == 0:
            continue
        stack: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
            ((start,), (codes[start],))
        ]
        while stack:
            path, labels = stack.pop()
            tail = path[-1]
            # every simple path is walked from both endpoints; count
            # the pair of directed discoveries once, from the lower
            # endpoint, halving the dict and canonicalisation work
            if path[0] < tail:
                rev = labels[::-1]
                key = labels if labels <= rev else rev
                counts[key] = get(key, 0) + 2
                if with_locations:
                    seen = locs.get(key)
                    if seen is None:
                        seen = locs[key] = set()
                    seen.update(path)
            if len(path) - 1 == max_length:
                continue
            # paths are short (<= max_length + 1 vertices): tuple
            # membership beats building a set per pop
            for w in adjacency[tail]:
                if w not in path:
                    stack.append((path + (w,), labels + (codes[w],)))
    return PathCensus(
        counts,
        {k: frozenset(v) for k, v in locs.items()},
    )
