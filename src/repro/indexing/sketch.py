"""Per-shard feature sketches for shard-aware query routing.

A sharded catalog fans a decision query out to every shard that holds
graphs, even when most shards provably cannot contain a match — each
such shard still pays census + filter + race-build work.  The routing
layer avoids that by keeping, per shard, a **count-threshold bitmask
sketch** of the shard's FTV posting lists: a constant-size summary that
can *prove* "no graph on this shard survives this query's filter"
without touching the shard's trie.

Sketch format
-------------
The feature space is hashed into ``num_buckets`` buckets
(:func:`bucket_of`, a deterministic multiplicative mix — never
``hash()``, which varies across platforms).  Each bucket holds one int
whose bit ``i`` means: *some* feature hashing to this bucket occurs at
least :data:`SKETCH_TIERS`\\ ``[i]`` times in *some* graph of the
shard.  Tiers are powers of two, so a feature observed with maximum
per-graph count ``c`` sets bits ``0..tier_index(c)`` — every bucket
mask is downward-closed.

Soundness
---------
The filter keeps a graph iff, for **every** query feature ``f`` with
census count ``n``, the graph contains ``f`` at least ``n`` times.
Let ``t* = tier_index(n)`` (the largest tier ``<= n``).  If the bucket
bit ``t*`` for ``f`` is **clear**, then no feature in that bucket —
in particular ``f`` itself, whether indexed on the shard or absent —
reaches ``SKETCH_TIERS[t*] <= n`` occurrences in any shard graph, so
``mask_ge(f, n)`` is zero and the shard's candidate set is empty:
pruning the shard cannot change any answer.  If the bit is set the
shard *may* answer (a colliding feature or a count between tiers can
set it spuriously), so collisions and tier gaps only ever weaken
pruning, never its soundness.  ``tests/test_routing.py`` drives this
adversarially (one-bucket sketches, unknown labels, cross-shard code
spaces).

Code spaces
-----------
Each shard's :class:`~repro.indexing.features.LabelInterner` codes only
its own labels, so shard-local feature codes are not comparable across
shards.  Sketches are therefore built in a **collection-wide** code
space: the builder recodes each shard feature through a label-preserving
``recode`` map before hashing.  Both interners assign codes in the same
natural label sort order, so recoding is monotone and the canonical
path direction is preserved; :func:`canonical_sequence` is re-applied
anyway as cheap insurance for exotic label sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from .features import canonical_sequence

__all__ = [
    "SKETCH_TIERS",
    "DEFAULT_SKETCH_BUCKETS",
    "tier_index",
    "bucket_of",
    "FeatureSketch",
]

#: occurrence-count thresholds, one bitmask bit each (powers of two)
SKETCH_TIERS: tuple[int, ...] = tuple(1 << i for i in range(16))

#: default bucket count — 256 ints keep a sketch a few KB per shard
DEFAULT_SKETCH_BUCKETS = 256

_MASK64 = (1 << 64) - 1


def tier_index(count: int) -> int:
    """Index of the largest tier ``<= count`` (``count`` must be >= 1).

    Counts beyond the top tier saturate at the last index — the sketch
    can then no longer distinguish them, which only costs pruning
    tightness, never soundness.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    return min(count.bit_length() - 1, len(SKETCH_TIERS) - 1)


def bucket_of(seq: tuple, num_buckets: int) -> int:
    """Deterministic bucket of a coded feature sequence.

    A multiplicative mix over the int codes — *not* Python's ``hash``,
    whose tuple mixing differs between 32- and 64-bit builds; routing
    decisions feed step bills and latencies, which the bench digests
    require to be identical across machines.
    """
    h = 0x345678
    for code in seq:
        h = ((h * 1000003) ^ (code & _MASK64)) & _MASK64
    return h % num_buckets


class FeatureSketch:
    """Count-threshold bitmask summary of one shard's posting lists."""

    __slots__ = ("buckets", "num_buckets", "graph_count", "feature_count")

    def __init__(
        self,
        buckets: tuple[int, ...],
        graph_count: int,
        feature_count: int,
    ) -> None:
        self.buckets = buckets
        self.num_buckets = len(buckets)
        self.graph_count = graph_count
        self.feature_count = feature_count

    @classmethod
    def from_postings(
        cls,
        items: Iterable[tuple[tuple, Mapping[int, object]]],
        recode: Mapping[int, int],
        graph_count: int,
        num_buckets: int = DEFAULT_SKETCH_BUCKETS,
    ) -> "FeatureSketch":
        """Fold ``(shard-coded seq, posting map)`` pairs into a sketch.

        ``items`` is what :meth:`repro.indexing.trie.PathTrie.iter_postings`
        yields; ``recode`` maps the shard's label codes to the
        collection-wide codes the router's query census uses.  Each
        feature contributes its **maximum per-graph count** — the
        quantity ``mask_ge`` thresholds on.
        """
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        buckets = [0] * num_buckets
        features = 0
        for seq, postings in items:
            if not postings:
                continue
            features += 1
            coded = canonical_sequence(
                tuple(recode[code] for code in seq)
            )
            best = max(p.count for p in postings.values())
            buckets[bucket_of(coded, num_buckets)] |= (
                1 << (tier_index(best) + 1)
            ) - 1
        return cls(tuple(buckets), graph_count, features)

    def patched(self, counts: Mapping[tuple, int]) -> "FeatureSketch":
        """A new sketch with one graph's census OR-ed in (adds only).

        ``counts`` is the newcomer's census **already in the sketch's
        collection-wide code space** (canonical coded seq → count).
        Sketches are monotone under adds — bucket bits only ever gain
        members — so patching is sound without revisiting the shard's
        posting lists: every bit set by :meth:`from_postings` over the
        grown shard is set here too (the newcomer's own features set
        theirs, all others were set before).  Removes are *not*
        patched: stale bits are a sound over-approximation (the shard
        is merely routed to when it could have been pruned), and a
        :meth:`~repro.service.routing.ShardRouter.refresh` tightens
        them back whenever the owner chooses.
        """
        buckets = list(self.buckets)
        num_buckets = self.num_buckets
        fresh = 0
        for seq, count in counts.items():
            fresh += 1
            buckets[bucket_of(seq, num_buckets)] |= (
                1 << (tier_index(count) + 1)
            ) - 1
        return FeatureSketch(
            tuple(buckets),
            self.graph_count + 1,
            self.feature_count + fresh,
        )

    def score(self, counts: Mapping[tuple, int]) -> Optional[tuple[int, int]]:
        """Expected-hit score of a query census, or None when pruned.

        ``None`` means *proof*: some query feature's threshold bit is
        clear, so no graph on this shard can survive the filter.
        Otherwise the score is ``(min margin, total margin)`` where a
        feature's margin is how many tiers the shard's sketched maximum
        clears the needed count by — a shard that barely admits every
        feature scores below one with room to spare, which is the
        routing order's expected-first-true heuristic.
        """
        buckets = self.buckets
        num_buckets = self.num_buckets
        min_margin = len(SKETCH_TIERS)
        total = 0
        for seq, needed in counts.items():
            mask = buckets[bucket_of(seq, num_buckets)]
            tier = tier_index(needed)
            if not (mask >> tier) & 1:
                return None
            margin = mask.bit_length() - 1 - tier
            total += margin
            if margin < min_margin:
                min_margin = margin
        return (min_margin, total)

    def admits(self, counts: Mapping[tuple, int]) -> bool:
        """Whether the shard may hold a filter survivor (sound keep)."""
        return self.score(counts) is not None

    def as_metrics(self) -> dict:
        """JSON-ready size/coverage statistics (memory reports)."""
        return {
            "buckets": self.num_buckets,
            "occupied": sum(1 for m in self.buckets if m),
            "features": self.feature_count,
            "graphs": self.graph_count,
        }
