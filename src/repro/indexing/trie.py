"""Trie structures over label sequences.

Grapes indexes its DFS paths in a **trie**; GGSX in a **suffix tree**
(§3.1.1).  Both are provided here:

* :class:`PathTrie` — plain trie keyed by label; each terminal node
  carries a posting map ``graph_id -> (count, locations)``.
* :class:`SuffixTrie` — a trie over every suffix of the inserted
  sequences, which is the uncompressed equivalent of GGSX's suffix tree
  and supports containment lookups of arbitrary sub-paths.

Postings are stored at every node along the inserted sequence, so a
lookup of a *prefix* of an indexed path also succeeds — matching the
"maximal paths of the query are matched with the dataset index, pruning
away unmatched branches" behaviour of both systems.

Filter fast path: alongside the posting maps, every node can serve its
postings as **bitmask posting lists** over stored-graph ids.
:meth:`PathTrie.mask_ge` answers "which graphs contain this feature at
least ``needed`` times" as a single int — the per-node *threshold
masks* are the distinct posting counts in ascending order with
suffix-OR'd graph masks, so one bisect plus one list index replaces a
per-graph dict scan.  Threshold masks are built lazily on first probe
(or eagerly via :meth:`PathTrie.seal`, which warm catalogs call) and
invalidated by insertion.

Invariant: ``mask_ge(seq, needed)`` must equal the brute force "OR of
``1 << gid`` over postings with count >= needed" for every node and
threshold — lazily sealed, eagerly sealed, and re-sealed tries all
answer identically (the equivalence suite probes all three states).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator

__all__ = ["PathTrie", "SuffixTrie", "Posting"]

LabelSeq = tuple


class Posting:
    """Occurrence record of a feature in one graph."""

    __slots__ = ("count", "locations")

    def __init__(self, count: int = 0, locations: frozenset[int] = frozenset()):
        self.count = count
        self.locations = locations

    def merge(self, count: int, locations: frozenset[int]) -> None:
        """Accumulate another batch of occurrences."""
        self.count += count
        if locations:
            self.locations = self.locations | locations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Posting(count={self.count}, |loc|={len(self.locations)})"


class _Node:
    __slots__ = ("children", "postings", "thresholds")

    def __init__(self) -> None:
        self.children: dict[object, _Node] = {}
        self.postings: dict[int, Posting] = {}
        #: (ascending distinct counts, suffix-OR graph masks); None
        #: until sealed, reset by insertion
        self.thresholds: tuple[list[int], list[int]] | None = None

    def seal(self) -> tuple[list[int], list[int]]:
        """Build the threshold masks from the posting map."""
        pairs = sorted(
            (posting.count, gid)
            for gid, posting in self.postings.items()
        )
        counts: list[int] = []
        masks: list[int] = []
        mask = 0
        for count, gid in reversed(pairs):
            mask |= 1 << gid
            if counts and counts[-1] == count:
                masks[-1] = mask
            else:
                counts.append(count)
                masks.append(mask)
        counts.reverse()
        masks.reverse()
        self.thresholds = (counts, masks)
        return self.thresholds

class PathTrie:
    """Trie over label sequences with per-graph postings."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def insert(
        self,
        seq: LabelSeq,
        graph_id: int,
        count: int,
        locations: frozenset[int] = frozenset(),
    ) -> None:
        """Record ``count`` occurrences of ``seq`` in ``graph_id``.

        Postings accumulate on the terminal node of ``seq`` only; prefix
        nodes exist structurally (their own occurrences are inserted
        separately by the census, which emits every prefix as a path in
        its own right).
        """
        node = self._root
        for lab in seq:
            nxt = node.children.get(lab)
            if nxt is None:
                nxt = node.children[lab] = _Node()
                self._size += 1
            node = nxt
        posting = node.postings.get(graph_id)
        if posting is None:
            node.postings[graph_id] = Posting(count, locations)
        else:
            posting.merge(count, locations)
        node.thresholds = None

    def remove_graph(self, graph_id: int) -> int:
        """Delete every posting of ``graph_id`` (dynamic-collection
        removes).

        Touched nodes drop their threshold masks — the same
        unseal-on-mutation rule :meth:`insert` applies — so lazy or
        eager resealing rebuilds them without the departed graph's
        bit.  Empty nodes are kept: structure is cheap, and a later
        re-add of the same paths reuses them.  Returns the number of
        postings deleted.
        """
        removed = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if graph_id in node.postings:
                del node.postings[graph_id]
                node.thresholds = None
                removed += 1
            stack.extend(node.children.values())
        return removed

    def _find(self, seq: LabelSeq) -> _Node | None:
        node = self._root
        for lab in seq:
            node = node.children.get(lab)
            if node is None:
                return None
        return node

    def lookup(self, seq: LabelSeq) -> dict[int, Posting]:
        """Postings of ``seq`` (empty when the feature is absent)."""
        node = self._find(seq)
        return dict(node.postings) if node else {}

    def mask_ge(self, seq: LabelSeq, needed: int) -> int:
        """Bitmask of graphs containing ``seq`` >= ``needed`` times.

        Bit ``g`` is set iff graph ``g``'s posting count for ``seq`` is
        at least ``needed`` — exactly the set the frequency-pruning
        filter intersects, as one int.  The walk and the threshold
        probe are inlined: this runs once per query feature on the
        filter hot path.
        """
        node = self._root
        for lab in seq:
            node = node.children.get(lab)
            if node is None:
                return 0
        thresholds = node.thresholds
        if thresholds is None:
            if not node.postings:
                return 0
            thresholds = node.seal()
        counts, masks = thresholds
        i = bisect_left(counts, needed)
        return masks[i] if i < len(masks) else 0

    def seal(self) -> int:
        """Eagerly build every node's threshold masks (catalog warmup).

        Returns the number of posting-carrying nodes sealed.  Purely a
        warm-start: lazy per-probe sealing produces identical masks.
        """
        sealed = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.postings:
                node.seal()
                sealed += 1
            stack.extend(node.children.values())
        return sealed

    def contains(self, seq: LabelSeq) -> bool:
        """Whether ``seq`` is a node in the trie."""
        node = self._find(seq)
        return node is not None and bool(node.postings)

    @property
    def node_count(self) -> int:
        """Number of non-root trie nodes (index-size statistic)."""
        return self._size

    def iter_features(self) -> Iterator[LabelSeq]:
        """All indexed sequences that carry postings."""
        for seq, _ in self.iter_postings():
            yield seq

    def iter_postings(self) -> Iterator[tuple[LabelSeq, dict[int, "Posting"]]]:
        """All (sequence, posting map) pairs that carry postings.

        One walk instead of an ``iter_features`` + ``lookup`` pair per
        feature; this is what the per-shard routing sketch folds over
        (see :class:`repro.indexing.sketch.FeatureSketch`).  The posting
        maps are the live node dicts — callers must not mutate them.
        """
        stack: list[tuple[_Node, LabelSeq]] = [(self._root, ())]
        while stack:
            node, seq = stack.pop()
            if node.postings:
                yield seq, node.postings
            for lab, child in node.children.items():
                stack.append((child, seq + (lab,)))


class SuffixTrie(PathTrie):
    """Trie over all suffixes of inserted sequences (GGSX-style).

    Inserting ``(a, b, c)`` records postings for ``(a, b, c)``,
    ``(b, c)`` and ``(c,)``, so any *sub*-path of an indexed path can be
    looked up — the structural property GGSX's suffix tree provides.
    """

    def insert(
        self,
        seq: LabelSeq,
        graph_id: int,
        count: int,
        locations: frozenset[int] = frozenset(),
    ) -> None:
        for start in range(len(seq)):
            super().insert(seq[start:], graph_id, count, locations)
