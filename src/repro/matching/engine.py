"""Matcher engine framework: steppable search, budgets, outcomes.

Why steppable engines
---------------------

The paper measures wall-clock time on native (C/C++/Java) matchers and
races OS threads.  In CPython, CPU-bound threads do not run in parallel
(the GIL), so a faithful *mechanical* port would measure noise.  Instead,
every matcher in this package is written as a **generator** that yields
control after each unit of search work (one candidate-pair probe /
search-state expansion).  "Execution time" is the number of steps
consumed — deterministic, machine-independent, and proportional to the
real work the original implementations do.

This buys the reproduction three things:

* the paper's 10-minute kill cap becomes a *step budget* (`Budget`),
  enforced exactly;
* the Ψ-framework race "first thread to finish wins, the rest are
  killed" becomes round-robin interleaving of N engines, with exact and
  reproducible outcomes (:mod:`repro.psi.executors`);
* isomorphic-query variance is preserved, because search order — the
  thing node-ID permutations perturb — is what determines step counts.

Wall-clock budgets (`timeout_s`) are also supported for users who want
real-time caps on top.

Batched stepping
----------------

Yielding once per probe makes step accounting exact but pays one
generator suspension per unit of work.  Engines may therefore yield an
``int`` meaning "a batch of N steps just happened" (a bare ``yield`` /
``yield None`` still means one step).  :func:`drive` and the race
executors in :mod:`repro.psi.executors` sum batches, so **total step
counts are bit-for-bit identical** to one-yield-per-step execution;
only the suspension granularity changes.  Killed attempts are clamped
to the budget value, which is also exactly what unbatched execution
reports.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Generator, Mapping
from dataclasses import dataclass, field
from typing import Optional

from ..graphs import LabeledGraph

__all__ = [
    "Budget",
    "MatchOutcome",
    "GraphIndex",
    "Matcher",
    "MatcherError",
    "SearchEngine",
    "drive",
    "DEFAULT_MAX_EMBEDDINGS",
]

# Paper §3.2: "the number of searched embeddings ... is capped at 1000".
DEFAULT_MAX_EMBEDDINGS = 1000

Embedding = dict[int, int]
# engines yield None (one step) or an int batch of steps
SearchEngine = Generator[Optional[int], None, "MatchOutcome"]


class MatcherError(RuntimeError):
    """Raised on matcher misuse (e.g., query larger than stored graph)."""


@dataclass(frozen=True)
class Budget:
    """A kill cap for one matching attempt.

    ``max_steps`` is the primary currency (see module docstring);
    ``timeout_s`` optionally adds a wall-clock cap, checked every
    ``check_every`` steps to keep overhead negligible.

    The paper's setup corresponds to ``Budget(max_steps=BUDGET)`` with the
    10-minute cap mapped onto steps; killed attempts are *charged* the
    budget value, mirroring the paper's convention of using 600'' as the
    execution time of killed queries.
    """

    max_steps: Optional[int] = None
    timeout_s: Optional[float] = None
    check_every: int = 1024

    def __post_init__(self) -> None:
        if self.max_steps is not None and self.max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @classmethod
    def unlimited(cls) -> "Budget":
        """No cap (small graphs / tests)."""
        return cls()


@dataclass
class MatchOutcome:
    """Result of one matching/decision attempt.

    Attributes
    ----------
    found:
        Whether at least one embedding exists (the decision answer).
    embeddings:
        Collected embeddings (query vertex -> graph vertex), up to the
        requested maximum; empty when ``count_only``.
    num_embeddings:
        Number of embeddings found (== len(embeddings) unless
        ``count_only``).
    steps:
        Search steps consumed — the reproduction's execution time.
    killed:
        True when the budget expired before the search finished.
    exhausted:
        True when the search space was fully explored (or the embedding
        cap was reached).  ``killed`` and ``exhausted`` are mutually
        exclusive.
    algorithm:
        Name of the matcher that produced this outcome.
    """

    found: bool = False
    embeddings: list[Embedding] = field(default_factory=list)
    num_embeddings: int = 0
    steps: int = 0
    killed: bool = False
    exhausted: bool = False
    algorithm: str = ""

    def charged_steps(self, budget: Optional[Budget]) -> int:
        """Steps to charge in metrics: budget value when killed.

        Mirrors the paper's §3.5 convention: "for queries that were killed
        at the 10' limit we use this time (i.e., 600'') as their minimum
        execution time".
        """
        if self.killed and budget is not None and budget.max_steps:
            return budget.max_steps
        return self.steps


class GraphIndex:
    """Per-stored-graph precomputations shared by every NFV matcher.

    This corresponds to the "indexing phase" the paper describes for the
    NFV methods: vertex label lists, label/edge frequencies, degrees.
    Matcher-specific indexes (GraphQL signatures, sPath distance
    structures, QuickSI inner supports) build on top of it in each
    matcher's ``prepare``.  Index construction is *not* budgeted, exactly
    as the paper exempts indexing from the 10' cap.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        kern = graph.kernel()
        # the kernel's label buckets ARE the vertex label lists (one
        # pass, shared with every other index of the same graph)
        self.label_index: dict[object, tuple[int, ...]] = dict(
            kern.label_buckets
        )
        self.label_frequencies = {
            lab: len(vs) for lab, vs in self.label_index.items()
        }
        self.degrees = tuple(len(nbrs) for nbrs in kern.neighbors)
        # fast-path aliases used by the matcher inner loops
        self.adjacency = kern.neighbors
        self.adj_masks = kern.adj_masks
        self.labels = kern.labels
        self.label_codes = kern.label_codes
        self.code_of = kern.code_of
        # frequency of unordered label pairs over edges — QuickSI's edge
        # frequency statistic
        labels = kern.labels
        edge_freq: dict[tuple, int] = {}
        for u, v in graph.edges():
            key = _label_pair(labels[u], labels[v])
            edge_freq[key] = edge_freq.get(key, 0) + 1
        self.edge_label_frequencies = edge_freq

    def candidates_by_label(self, label: object) -> tuple[int, ...]:
        """Stored-graph vertices with ``label`` in ascending ID order."""
        return self.label_index.get(label, ())

    def edge_frequency(self, label_a: object, label_b: object) -> int:
        """Number of stored edges joining the two labels."""
        return self.edge_label_frequencies.get(
            _label_pair(label_a, label_b), 0
        )


def _label_pair(a: object, b: object) -> tuple:
    """Canonical unordered label pair key."""
    ra, rb = repr(a), repr(b)
    return (a, b) if ra <= rb else (b, a)


class Matcher(ABC):
    """Base class for subgraph-isomorphism matchers (NFV methods + VF2).

    Subclasses implement :meth:`engine` as a generator yielding once per
    search step.  :meth:`run` is the convenience entry point that drives
    the generator under a :class:`Budget`.
    """

    #: Short algorithm name used in reports ("VF2", "GQL", "SPA", "QSI").
    name: str = "matcher"

    def prepare(self, graph: LabeledGraph, cache: bool = True) -> GraphIndex:
        """The per-stored-graph index (un-budgeted, reusable).

        Memoized per stored graph through
        :data:`repro.caching.prepare_cache`, so repeated runs and races
        against the same graph stop re-indexing.  Pass ``cache=False``
        to force a fresh build.
        """
        if not cache:
            return self._build_index(graph)
        from ..caching import prepare_cache

        return prepare_cache.get(
            graph, self.prepare_key(), lambda: self._build_index(graph)
        )

    def prepare_key(self) -> tuple:
        """Memoization key: matcher configs that share an index share it.

        Keyed on the ``_build_index`` implementation, so every matcher
        that builds a plain :class:`GraphIndex` (VF2, QuickSI, Ullmann,
        TurboISO, the reference oracle) shares one index per stored
        graph, while matchers with their own index type (GraphQL,
        sPath) stay distinct.
        """
        return (type(self)._build_index.__qualname__,)

    def _build_index(self, graph: LabeledGraph) -> GraphIndex:
        """Actually construct the index (subclass hook)."""
        return GraphIndex(graph)

    @abstractmethod
    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        """Steppable search over ``index.graph`` for ``query``.

        Yields after each unit of work; returns a :class:`MatchOutcome`
        (with ``steps`` unset — the driver fills it in).
        """

    def run(
        self,
        graph_or_index: LabeledGraph | GraphIndex,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> MatchOutcome:
        """Run the matcher to completion or budget exhaustion."""
        index = (
            graph_or_index
            if isinstance(graph_or_index, GraphIndex)
            else self.prepare(graph_or_index)
        )
        gen = self.engine(
            index, query, max_embeddings=max_embeddings,
            count_only=count_only,
        )
        outcome = drive(gen, budget)
        outcome.algorithm = self.name
        return outcome

    def decide(
        self,
        graph_or_index: LabeledGraph | GraphIndex,
        query: LabeledGraph,
        budget: Optional[Budget] = None,
    ) -> MatchOutcome:
        """Decision-problem entry point: stop at the first embedding.

        This is the FTV verification semantics (the paper modified Grapes'
        VF2 to "return after the first match").
        """
        return self.run(
            graph_or_index, query, budget=budget, max_embeddings=1,
        )


def drive(gen: SearchEngine, budget: Optional[Budget] = None) -> MatchOutcome:
    """Drive a search engine to completion under ``budget``.

    Returns the engine's outcome with ``steps`` filled in; if the budget
    expires first, the engine is closed and a ``killed`` outcome carrying
    the budget's step count is returned.

    Engines may yield ``None`` (one step) or an int batch of steps; a
    batch that crosses ``max_steps`` kills the attempt at exactly the
    budget value, matching unbatched accounting.
    """
    steps = 0
    max_steps = budget.max_steps if budget else None
    timeout_s = budget.timeout_s if budget else None
    check_every = budget.check_every if budget else 1024
    deadline = (time.monotonic() + timeout_s) if timeout_s else None
    next_check = check_every
    try:
        while True:
            try:
                inc = next(gen)
            except StopIteration as stop:
                outcome = stop.value
                if outcome is None:  # pragma: no cover - defensive
                    outcome = MatchOutcome()
                outcome.steps = steps
                return outcome
            steps += 1 if inc is None else inc
            if max_steps is not None and steps >= max_steps:
                steps = max_steps
                break
            if deadline is not None and steps >= next_check:
                next_check = steps + check_every
                if time.monotonic() > deadline:
                    break
    finally:
        gen.close()
    return MatchOutcome(found=False, steps=steps, killed=True)
