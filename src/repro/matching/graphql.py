"""GraphQL matcher (He & Singh, SIGMOD 2008).

Per the paper's §3.1.2 description, GraphQL:

* indexes, for every stored vertex, its label plus a **neighbourhood
  signature** capturing the labels of neighbouring nodes within a radius,
  in lexicographic order;
* at query time retrieves all possible matches per pattern vertex, then
  prunes with three rules: (1) label + signature containment, (2) an
  iterative **pseudo subgraph isomorphism** test up to level ``l`` (for
  every surviving pair, the neighbours of the query vertex must be
  matchable to *distinct* neighbours of the stored vertex), and (3) a
  **search-order optimisation** over left-deep join plans driven by
  estimated intermediate result sizes;
* finally executes the sub-iso test as a series of joins over the
  candidate lists.

The pseudo sub-iso test uses bipartite matching (Kuhn's augmenting-path
algorithm) between query-vertex neighbourhoods and candidate-vertex
neighbourhoods.  Tie-breaks in plan selection are by node ID — the
paper's results show GraphQL is the *least* rewriting-sensitive NFV
method because this plan logic is relatively ID-insensitive, and the
same holds here (the estimates dominate; IDs only break ties).

One engine step is charged per filter probe, per pseudo-iso pair test
and per join candidate probe.
"""

from __future__ import annotations

from collections import Counter

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["GraphQLMatcher", "GraphQLIndex"]


class GraphQLIndex(GraphIndex):
    """GraphIndex plus per-vertex neighbour-label signatures."""

    def __init__(self, graph: LabeledGraph) -> None:
        super().__init__(graph)
        self.signatures: list[Counter] = [
            Counter(graph.label(w) for w in graph.neighbors(v))
            for v in graph.vertices()
        ]


def _signature_contains(big: Counter, small: Counter) -> bool:
    """Multiset containment ``small <= big``."""
    return all(big.get(lab, 0) >= k for lab, k in small.items())


class GraphQLMatcher(Matcher):
    """GraphQL: signature filtering, pseudo-iso refinement, ordered joins.

    Parameters
    ----------
    refine_level:
        Number of pseudo sub-iso iterations (the paper runs with
        ``r = 4``).
    """

    name = "GQL"

    def __init__(self, refine_level: int = 4) -> None:
        if refine_level < 0:
            raise ValueError("refine_level must be >= 0")
        self.refine_level = refine_level

    def _build_index(self, graph: LabeledGraph) -> GraphQLIndex:
        return GraphQLIndex(graph)

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        if not isinstance(index, GraphQLIndex):
            index = self.prepare(index.graph)
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order or query.size > graph.size:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views
        adj = index.adjacency
        masks = index.adj_masks
        sigs = index.signatures
        q_adj = query.adjacency()
        q_labels = query.labels

        q_sigs = [
            Counter(q_labels[w] for w in q_adj[u])
            for u in query.vertices()
        ]

        # ---- rule 1: label + signature containment filter -------------
        cand: list[list[int]] = []
        for u in query.vertices():
            pool = index.candidates_by_label(q_labels[u])
            q_sig = q_sigs[u]
            lst = [
                c for c in pool if _signature_contains(sigs[c], q_sig)
            ]
            if len(pool):
                yield len(pool)  # one step per filter probe, batched
            if not lst:
                outcome.exhausted = True
                return outcome
            cand.append(lst)

        cand_sets = [set(lst) for lst in cand]

        # ---- rule 2: iterative pseudo subgraph isomorphism -------------
        def pseudo_iso_ok(u: int, c: int) -> bool:
            """Bipartite test: distinct candidate neighbours for all of
            u's neighbours (Kuhn's algorithm)."""
            q_nbrs = q_adj[u]
            c_nbrs = adj[c]
            if len(q_nbrs) > len(c_nbrs):
                return False
            match_of: dict[int, int] = {}  # graph nbr -> query nbr

            def try_assign(w: int, visited: set[int]) -> bool:
                cand_w = cand_sets[w]
                for d in c_nbrs:
                    if d in visited or d not in cand_w:
                        continue
                    visited.add(d)
                    if d not in match_of or try_assign(
                        match_of[d], visited
                    ):
                        match_of[d] = w
                        return True
                return False

            return all(try_assign(w, set()) for w in q_nbrs)

        for _ in range(self.refine_level):
            changed = False
            for u in query.vertices():
                lst = cand[u]
                survivors = [c for c in lst if pseudo_iso_ok(u, c)]
                yield len(lst)  # one step per pair test, batched
                if len(survivors) != len(lst):
                    changed = True
                    if not survivors:
                        outcome.exhausted = True
                        return outcome
                    cand[u] = survivors
                    cand_sets[u] = set(survivors)
            if not changed:
                break

        # ---- rule 3: left-deep search-order optimisation ----------------
        # greedy plan: start at the smallest candidate list; extend with
        # the connected vertex minimising the estimated intermediate
        # result size |cand| * gamma^(#join edges).  Ties break by ID.
        gamma = 0.5
        order: list[int] = []
        chosen: set[int] = set()
        first = min(query.vertices(), key=lambda u: (len(cand[u]), u))
        order.append(first)
        chosen.add(first)
        while len(order) < nq:
            best_u = -1
            best_cost = float("inf")
            for u in query.vertices():
                if u in chosen:
                    continue
                links = sum(1 for w in query.neighbors(u) if w in chosen)
                if links == 0:
                    continue
                cost = len(cand[u]) * (gamma ** links)
                if cost < best_cost or (cost == best_cost and u < best_u):
                    best_cost = cost
                    best_u = u
            if best_u < 0:
                # disconnected query: pick the globally cheapest remaining
                best_u = min(
                    (u for u in query.vertices() if u not in chosen),
                    key=lambda u: (len(cand[u]), u),
                )
            order.append(best_u)
            chosen.add(best_u)

        # ---- joins (backtracking along the plan) -----------------------
        q_to_g: dict[int, int] = {}
        used_mask = 0

        def search(pos: int) -> SearchEngine:
            nonlocal used_mask
            if pos == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            u = order[pos]
            need = 0
            for w in q_adj[u]:
                if w in q_to_g:
                    need |= 1 << q_to_g[w]
            pending = 0  # batched join-candidate probes
            for c in cand[u]:
                pending += 1
                if (used_mask >> c) & 1:
                    continue
                if masks[c] & need == need:
                    yield pending
                    pending = 0
                    q_to_g[u] = c
                    used_mask |= 1 << c
                    yield from search(pos + 1)
                    del q_to_g[u]
                    used_mask &= ~(1 << c)
                    if outcome.num_embeddings >= max_embeddings:
                        return None
            if pending:
                yield pending
            return None

        yield from search(0)
        outcome.exhausted = True
        return outcome
