"""sPath matcher (Zhao & Han, PVLDB 2010).

Per the paper's §3.1.2 description, sPath:

* maintains, per stored vertex, a **neighbourhood signature** of shortest
  paths, stored *decomposed in a distance-wise structure* (for each
  distance ``d`` up to the neighbourhood radius, how many vertices of
  each label sit at distance exactly ``d``) — this avoids materialising
  actual paths;
* at query time decomposes the query into **shortest paths that cover
  all its edges**, and selects, among candidate decompositions, paths
  that (i) cover the query and (ii) have good selectivity — i.e.
  minimise the estimated result size of each join;
* matches the selected paths one at a time against candidate paths of
  the stored graph, with **edge-by-edge verification**.

This reproduction implements the distance-wise signature filter exactly
(cumulative containment per label and distance — a sound necessary
condition for sub-iso), a greedy minimum-selectivity path cover, and
path-at-a-time backtracking with edge-by-edge verification.  The paths'
vertex order (and therefore the whole search order) depends on node-ID
tie-breaks, which is what makes sPath strongly rewriting-sensitive
(the paper reports (max/min)QLA up to 6695x for sPath on yeast).

One engine step is charged per filter probe and per join candidate
probe.
"""

from __future__ import annotations

from collections import Counter, deque

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["SPathMatcher", "SPathIndex", "distance_signature"]


def distance_signature(
    graph: LabeledGraph, v: int, radius: int
) -> list[Counter]:
    """Distance-wise label counts around ``v``.

    ``result[d - 1]`` counts labels of vertices at shortest-path distance
    exactly ``d`` (``1 <= d <= radius``) from ``v``.
    """
    sig: list[Counter] = [Counter() for _ in range(radius)]
    dist = {v: 0}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        d = dist[u]
        if d == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = d + 1
                sig[d][graph.label(w)] += 1
                queue.append(w)
    return sig


def _cumulative(sig: list[Counter]) -> list[Counter]:
    """Prefix sums over distance: labels within distance ``<= d``."""
    out: list[Counter] = []
    acc: Counter = Counter()
    for layer in sig:
        acc = acc + layer
        out.append(acc)
    return out


class SPathIndex(GraphIndex):
    """GraphIndex plus cumulative distance-wise signatures.

    Parameters
    ----------
    radius:
        Neighbourhood radius (the paper runs sPath with radius 4; the
        scaled-down default is 3, configurable through
        :class:`SPathMatcher`).
    """

    def __init__(self, graph: LabeledGraph, radius: int = 3) -> None:
        super().__init__(graph)
        self.radius = radius
        self.cum_signatures: list[list[Counter]] = [
            _cumulative(distance_signature(graph, v, radius))
            for v in graph.vertices()
        ]


def _signature_dominates(
    g_cum: list[Counter], q_cum: list[Counter]
) -> bool:
    """Sound filter: for every distance d and label, the stored vertex
    must see at least as many label occurrences within distance d as the
    query vertex does (images of distance-d query vertices lie within
    distance d)."""
    for d, q_layer in enumerate(q_cum):
        g_layer = g_cum[d]
        for lab, k in q_layer.items():
            if g_layer.get(lab, 0) < k:
                return False
    return True


class SPathMatcher(Matcher):
    """sPath: distance-signature filtering + path-at-a-time joins.

    Parameters
    ----------
    radius:
        Signature neighbourhood radius (paper default 4; scaled default 3).
    max_path_length:
        Maximum edges per decomposed path (paper default 4).
    """

    name = "SPA"

    def __init__(self, radius: int = 3, max_path_length: int = 4) -> None:
        if radius < 1:
            raise ValueError("radius must be >= 1")
        if max_path_length < 1:
            raise ValueError("max_path_length must be >= 1")
        self.radius = radius
        self.max_path_length = max_path_length

    def prepare_key(self) -> tuple:
        # the distance signatures depend on the radius
        return (type(self).__name__, self.radius)

    def _build_index(self, graph: LabeledGraph) -> SPathIndex:
        return SPathIndex(graph, radius=self.radius)

    # ------------------------------------------------------------------
    # query decomposition
    # ------------------------------------------------------------------

    def _path_cover(
        self, query: LabeledGraph, cand_size: list[int]
    ) -> list[list[int]]:
        """Greedy minimum-selectivity path cover of the query's edges.

        Starting from the uncovered edge whose endpoint has the smallest
        candidate list, grow a path through uncovered edges, at each hop
        taking the neighbour with the smallest candidate list (ties by
        node ID), up to ``max_path_length`` edges.  Repeat until every
        edge is covered.  Paths are then ordered by estimated result
        size — the product of their vertices' candidate-list sizes —
        which realises the paper's "good selectivity" path selection.
        """
        uncovered = set(query.edges())
        paths: list[list[int]] = []
        while uncovered:
            # seed: uncovered edge with the most selective endpoint
            seed = min(
                uncovered,
                key=lambda e: (
                    min(cand_size[e[0]], cand_size[e[1]]),
                    e,
                ),
            )
            u, v = seed
            if cand_size[v] < cand_size[u]:
                u, v = v, u
            path = [u, v]
            uncovered.discard((min(u, v), max(u, v)))
            while len(path) - 1 < self.max_path_length:
                tail = path[-1]
                options = [
                    w
                    for w in query.neighbors(tail)
                    if (min(tail, w), max(tail, w)) in uncovered
                ]
                if not options:
                    break
                nxt = min(options, key=lambda w: (cand_size[w], w))
                path.append(nxt)
                uncovered.discard((min(tail, nxt), max(tail, nxt)))
            paths.append(path)

        def estimated_size(path: list[int]) -> float:
            est = 1.0
            for w in path:
                est *= max(cand_size[w], 1)
            return est

        # join-order selection: most selective path first, then always a
        # path sharing a vertex with the already-selected region (the
        # join stays connected, avoiding Cartesian blowups), again by
        # estimated result size.  This realises the paper's "minimise
        # the estimated result-set size of each join operation".
        remaining = sorted(paths, key=lambda p: (estimated_size(p), p))
        ordered: list[list[int]] = []
        covered: set[int] = set()
        while remaining:
            connected = [
                p for p in remaining if covered and not covered.isdisjoint(p)
            ]
            pool = connected if connected else remaining
            best = min(pool, key=lambda p: (estimated_size(p), p))
            remaining.remove(best)
            ordered.append(best)
            covered.update(best)
        return ordered

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        if not isinstance(index, SPathIndex):
            index = self.prepare(index.graph)
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order or query.size > graph.size:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views
        adj = index.adjacency
        masks = index.adj_masks
        g_cum = index.cum_signatures
        q_adj = query.adjacency()
        q_labels = query.labels

        # ---- vertex filtering via distance-wise signatures ------------
        q_cums = [
            _cumulative(distance_signature(query, u, index.radius))
            for u in query.vertices()
        ]
        cand: list[list[int]] = []
        for u in query.vertices():
            pool = index.candidates_by_label(q_labels[u])
            q_cum = q_cums[u]
            lst = [
                c for c in pool if _signature_dominates(g_cum[c], q_cum)
            ]
            if len(pool):
                yield len(pool)  # one step per filter probe, batched
            if not lst:
                outcome.exhausted = True
                return outcome
            cand.append(lst)
        cand_sets = [set(lst) for lst in cand]

        # ---- path cover + flattened matching slots ---------------------
        paths = self._path_cover(query, [len(lst) for lst in cand])
        # slots: (query vertex, predecessor in its path or None)
        slots: list[tuple[int, int | None]] = []
        slotted: set[int] = set()
        for path in paths:
            # a candidate path can be matched from either end; start at
            # the end already bound by previous joins when possible
            if path[-1] in slotted and path[0] not in slotted:
                path = path[::-1]
            prev: int | None = None
            for w in path:
                slots.append((w, prev))
                prev = w
                slotted.add(w)
        # isolated query vertices (no edges) still need slots
        for u in query.vertices():
            if query.degree(u) == 0:
                slots.append((u, None))
                slotted.add(u)
        assert slotted == set(query.vertices())

        q_to_g: dict[int, int] = {}
        used_mask = 0
        n_slots = len(slots)

        def search(pos: int) -> SearchEngine:
            nonlocal used_mask
            if pos == n_slots:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            u, prev = slots[pos]
            if u in q_to_g:
                # revisited path junction: edge-by-edge verification only
                yield
                if prev is not None and not (
                    masks[q_to_g[prev]] >> q_to_g[u]
                ) & 1:
                    return None
                yield from search(pos + 1)
                return None
            need = 0
            for w in q_adj[u]:
                if w in q_to_g:
                    need |= 1 << q_to_g[w]
            pool = (
                adj[q_to_g[prev]] if prev is not None else cand[u]
            )
            cand_u = cand_sets[u]
            pending = 0  # batched join-candidate probes
            for c in pool:
                pending += 1
                if (used_mask >> c) & 1 or c not in cand_u:
                    continue
                if masks[c] & need == need:
                    yield pending
                    pending = 0
                    q_to_g[u] = c
                    used_mask |= 1 << c
                    yield from search(pos + 1)
                    del q_to_g[u]
                    used_mask &= ~(1 << c)
                    if outcome.num_embeddings >= max_embeddings:
                        return None
            if pending:
                yield pending
            return None

        yield from search(0)
        outcome.exhausted = True
        return outcome
