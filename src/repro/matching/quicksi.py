"""QuickSI matcher (Shang et al., PVLDB 2008).

Per the paper's §3.1.2 description, QuickSI:

* precomputes label and edge(-label-pair) frequencies over the stored
  graph and derives the **average inner support** of each query vertex
  and edge — the expected number of its possible mappings;
* uses inner supports as edge weights to build a rooted **minimum
  spanning tree** of the query ("in case of symmetries, edges are added
  in such a way that will make the MST denser");
* matches query vertices in MST-insertion order (the *QI-sequence*),
  giving priority to vertices with infrequent labels and infrequent
  adjacent edge labels.

Tie-breaking in root selection and Prim expansion is by node ID, which is
why isomorphic rewritings shift QuickSI's behaviour (the paper reports a
(max/min)QLA of up to 15021x for QuickSI on yeast).

One engine step is charged per candidate probe.
"""

from __future__ import annotations

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["QuickSIMatcher", "build_qi_sequence", "QIEntry"]


class QIEntry:
    """One entry of the QI-sequence: a query vertex and its constraints.

    Attributes
    ----------
    vertex:
        The query vertex matched at this position.
    parent:
        The previously-inserted query vertex this one hangs off (tree
        edge), or ``None`` for the root.
    back_edges:
        Previously-inserted query vertices (other than ``parent``) that
        share an edge with ``vertex`` — checked on insertion.
    degree:
        Query degree of ``vertex`` (candidate degree filter).
    """

    __slots__ = ("vertex", "parent", "back_edges", "degree")

    def __init__(
        self,
        vertex: int,
        parent: int | None,
        back_edges: tuple[int, ...],
        degree: int,
    ) -> None:
        self.vertex = vertex
        self.parent = parent
        self.back_edges = back_edges
        self.degree = degree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QIEntry(v={self.vertex}, parent={self.parent}, "
            f"back={self.back_edges})"
        )


def build_qi_sequence(
    index: GraphIndex, query: LabeledGraph
) -> list[QIEntry]:
    """Build the QI-sequence (rooted MST insertion order) for ``query``.

    Edge weight = average inner support of the edge = frequency of its
    label pair among stored edges.  Root = vertex minimising (label
    frequency, node ID).  Prim expansion picks the cheapest tree edge;
    ties prefer the vertex with more edges back into the tree (denser
    MST, per the paper), then the smaller node ID.
    """
    def vertex_support(u: int) -> int:
        return index.label_frequencies.get(query.label(u), 0)

    def edge_support(u: int, v: int) -> int:
        return index.edge_frequency(query.label(u), query.label(v))

    root = min(query.vertices(), key=lambda u: (vertex_support(u), u))
    in_tree = {root}
    entries = [QIEntry(root, None, (), query.degree(root))]
    while len(in_tree) < query.order:
        best: tuple[int, int, int, int] | None = None
        best_pair: tuple[int, int] | None = None
        for u in in_tree:
            for v in query.neighbors(u):
                if v in in_tree:
                    continue
                weight = edge_support(u, v)
                # denser-MST tie-break: more back-edges into the tree
                density = -sum(
                    1 for w in query.neighbors(v) if w in in_tree
                )
                key = (weight, density, v, u)
                if best is None or key < best:
                    best = key
                    best_pair = (u, v)
        if best_pair is None:
            # disconnected query: restart Prim from the cheapest
            # remaining vertex (paper queries are connected; this keeps
            # the matcher total)
            v = min(
                (x for x in query.vertices() if x not in in_tree),
                key=lambda u: (vertex_support(u), u),
            )
            in_tree.add(v)
            entries.append(QIEntry(v, None, (), query.degree(v)))
            continue
        parent, v = best_pair
        back = tuple(
            sorted(
                w
                for w in query.neighbors(v)
                if w in in_tree and w != parent
            )
        )
        in_tree.add(v)
        entries.append(QIEntry(v, parent, back, query.degree(v)))
    return entries


class QuickSIMatcher(Matcher):
    """QuickSI: QI-sequence construction + sequential matching."""

    name = "QSI"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        if query.order == 0:
            raise ValueError("empty query graph")
        if query.order > graph.order or query.size > graph.size:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        seq = build_qi_sequence(index, query)
        n_entries = len(seq)

        # fast-path kernel views
        adj = index.adjacency
        masks = index.adj_masks
        g_codes = index.label_codes
        degs = index.degrees
        q_labels = query.labels
        # per-entry interned label codes (-1: label absent, no matches)
        entry_codes = tuple(
            index.code_of.get(q_labels[e.vertex], -1) for e in seq
        )

        q_to_g: dict[int, int] = {}
        used_mask = 0

        def search(i: int) -> SearchEngine:
            nonlocal used_mask
            if i == n_entries:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            entry = seq[i]
            u = entry.vertex
            code = entry_codes[i]
            min_deg = entry.degree
            if entry.parent is None:
                pool = index.candidates_by_label(q_labels[u])
            else:
                pool = adj[q_to_g[entry.parent]]
            need = 0
            for w in entry.back_edges:
                need |= 1 << q_to_g[w]
            pending = 0  # batched candidate probes
            for c in pool:
                pending += 1
                if (
                    (used_mask >> c) & 1
                    or g_codes[c] != code
                    or degs[c] < min_deg
                    or masks[c] & need != need
                ):
                    continue
                yield pending
                pending = 0
                q_to_g[u] = c
                used_mask |= 1 << c
                yield from search(i + 1)
                del q_to_g[u]
                used_mask &= ~(1 << c)
                if outcome.num_embeddings >= max_embeddings:
                    return None
            if pending:
                yield pending
            return None

        yield from search(0)
        outcome.exhausted = True
        return outcome
