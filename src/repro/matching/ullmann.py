"""Ullmann's subgraph-isomorphism algorithm (JACM 1976).

The paper cites Ullmann [18] as the classical baseline underlying the
vertex/edge-indexed NFV methods.  We include it both as a baseline for
the ablation benches and as another "alternative algorithm" the
Ψ-framework can race.

The algorithm maintains a candidate matrix ``M`` (query vertex -> set of
permissible stored vertices, initialised by label and degree) and
performs row-by-row assignment in ascending query-ID order, running the
classic *refinement* procedure after each assignment: a candidate ``c``
for query vertex ``u`` survives only if every neighbour of ``u`` still
has at least one candidate among the neighbours of ``c``.

One engine step is charged per candidate probe and per refinement cell
check batch; Ullmann's heavy refinement makes it expensive per node but
strong at pruning — a usefully *different* cost profile for racing.
"""

from __future__ import annotations

from ..graphs import LabeledGraph, bits_ascending
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["UllmannMatcher"]

_bits_ascending = bits_ascending


class UllmannMatcher(Matcher):
    """Ullmann's algorithm with per-assignment refinement."""

    name = "ULL"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views; candidate sets live as bitmask ints,
        # so the refinement's existential checks are single AND ops
        masks = index.adj_masks
        degs = index.degrees
        q_adj = query.adjacency()

        # initial candidate sets: label equality + degree dominance
        init: list[int] = []
        for u in query.vertices():
            du = query.degree(u)
            m = 0
            for c in index.candidates_by_label(query.label(u)):
                if degs[c] >= du:
                    m |= 1 << c
            init.append(m)
        if any(not m for m in init):
            outcome.exhausted = True
            return outcome

        def refine(cand: list[int]) -> SearchEngine:
            """Ullmann refinement to a fixed point; returns refined sets.

            Charges one step per (vertex, candidate-set) check round
            (batched per sweep).  Returns ``None`` in place of the list
            when some set empties (dead branch).
            """
            current = list(cand)
            changed = True
            while changed:
                changed = False
                checked = 0  # vertex rounds charged this sweep
                for u in range(nq):
                    checked += 1
                    q_nbrs = q_adj[u]
                    survivors = 0
                    for c in _bits_ascending(current[u]):
                        mc = masks[c]
                        for w in q_nbrs:
                            if not mc & current[w]:
                                break
                        else:
                            survivors |= 1 << c
                    if survivors != current[u]:
                        changed = True
                        if not survivors:
                            yield checked
                            return None
                        current[u] = survivors
                yield checked
            return current

        refined = yield from refine(init)
        if refined is None:
            outcome.exhausted = True
            return outcome

        q_to_g: dict[int, int] = {}
        used_mask = 0

        def search(u: int, cand: list[int]) -> SearchEngine:
            nonlocal used_mask
            if u == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            need = 0
            for w in q_adj[u]:
                if w in q_to_g:
                    need |= 1 << q_to_g[w]
            pending = 0  # batched candidate probes
            for c in _bits_ascending(cand[u]):
                pending += 1
                if (used_mask >> c) & 1:
                    continue
                if masks[c] & need != need:
                    continue
                yield pending
                pending = 0
                narrowed = list(cand)
                narrowed[u] = 1 << c
                narrowed = yield from refine(narrowed)
                if narrowed is None:
                    continue
                q_to_g[u] = c
                used_mask |= 1 << c
                yield from search(u + 1, narrowed)
                del q_to_g[u]
                used_mask &= ~(1 << c)
                if outcome.num_embeddings >= max_embeddings:
                    return None
            if pending:
                yield pending
            return None

        yield from search(0, refined)
        outcome.exhausted = True
        return outcome
