"""Ullmann's subgraph-isomorphism algorithm (JACM 1976).

The paper cites Ullmann [18] as the classical baseline underlying the
vertex/edge-indexed NFV methods.  We include it both as a baseline for
the ablation benches and as another "alternative algorithm" the
Ψ-framework can race.

The algorithm maintains a candidate matrix ``M`` (query vertex -> set of
permissible stored vertices, initialised by label and degree) and
performs row-by-row assignment in ascending query-ID order, running the
classic *refinement* procedure after each assignment: a candidate ``c``
for query vertex ``u`` survives only if every neighbour of ``u`` still
has at least one candidate among the neighbours of ``c``.

One engine step is charged per candidate probe and per refinement cell
check batch; Ullmann's heavy refinement makes it expensive per node but
strong at pruning — a usefully *different* cost profile for racing.
"""

from __future__ import annotations

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["UllmannMatcher"]


class UllmannMatcher(Matcher):
    """Ullmann's algorithm with per-assignment refinement."""

    name = "ULL"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # initial candidate sets: label equality + degree dominance
        init: list[frozenset[int]] = []
        for u in query.vertices():
            du = query.degree(u)
            init.append(
                frozenset(
                    c
                    for c in index.candidates_by_label(query.label(u))
                    if index.degrees[c] >= du
                )
            )
        if any(not s for s in init):
            outcome.exhausted = True
            return outcome

        def refine(
            cand: list[frozenset[int]],
        ) -> SearchEngine:
            """Ullmann refinement to a fixed point; returns refined sets.

            Yields one step per (vertex, candidate) check round.  Returns
            ``None`` in place of the list when some set empties (dead
            branch).
            """
            current = list(cand)
            changed = True
            while changed:
                changed = False
                for u in range(nq):
                    survivors = set()
                    q_nbrs = query.neighbors(u)
                    yield
                    for c in current[u]:
                        c_nbrs = graph.neighbor_set(c)
                        ok = all(
                            any(d in current[w] for d in c_nbrs)
                            for w in q_nbrs
                        )
                        if ok:
                            survivors.add(c)
                    if len(survivors) != len(current[u]):
                        changed = True
                        if not survivors:
                            return None
                        current[u] = frozenset(survivors)
            return current

        refined = yield from refine(init)
        if refined is None:
            outcome.exhausted = True
            return outcome

        q_to_g: dict[int, int] = {}
        used: set[int] = set()

        def search(u: int, cand: list[frozenset[int]]) -> SearchEngine:
            if u == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            mapped_nbrs = [
                q_to_g[w] for w in query.neighbors(u) if w in q_to_g
            ]
            for c in sorted(cand[u]):
                yield
                if c in used:
                    continue
                if not all(graph.has_edge(c, img) for img in mapped_nbrs):
                    continue
                narrowed = list(cand)
                narrowed[u] = frozenset((c,))
                narrowed = yield from refine(narrowed)
                if narrowed is None:
                    continue
                q_to_g[u] = c
                used.add(c)
                yield from search(u + 1, narrowed)
                del q_to_g[u]
                used.discard(c)
                if outcome.num_embeddings >= max_embeddings:
                    return None
            return None

        yield from search(0, refined)
        outcome.exhausted = True
        return outcome
