"""VF2 subgraph-isomorphism matcher (Cordella et al., TPAMI 2004).

VF2 is the verification algorithm underneath both FTV methods studied in
the paper (Grapes and GGSX).  Per the paper's §3.1.1 description:

* VF2 **does not define any order** in which query vertices are selected;
  given a partial mapping it extends it with a still-unmatched query
  vertex adjacent to the matched ones.  This reproduction resolves the
  "any order" to *ascending node ID* — exactly the property that makes
  VF2's running time depend dramatically on the (arbitrary) node-ID
  assignment, and hence makes the paper's isomorphic rewritings
  effective.
* Candidates for an unmatched query vertex are the same-label vertices of
  the stored graph, filtered by VF2's three pruning rules:

  1. candidates must be directly connected to the already-matched part of
     the stored graph (we enforce the stronger, correctness-required form:
     adjacent to the images of *all* matched neighbours);
  2. a lookahead on frontier degrees: the candidate must have at least as
     many unmatched neighbours adjacent to matched vertices as the query
     vertex does;
  3. a lookahead on the remaining neighbours: ditto for neighbours not
     adjacent to the matched region.

The engine charges one step per candidate-pair feasibility probe
(batched: consecutive probes are yielded as one int — see
:mod:`repro.matching.engine`), probing adjacency through the stored
graph's bitmask kernel.
"""

from __future__ import annotations

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["VF2Matcher", "SELECTION_POLICIES"]


def _label_multiset_feasible(index: GraphIndex, query: LabeledGraph) -> bool:
    """Necessary condition: the stored graph has enough of each label."""
    need: dict[object, int] = {}
    for v in query.vertices():
        lab = query.label(v)
        need[lab] = need.get(lab, 0) + 1
    return all(
        index.label_frequencies.get(lab, 0) >= k for lab, k in need.items()
    )


#: Vertex-selection policies: how the "any order" of the original VF2
#: is resolved.  ``id`` is the faithful default (and the lever that
#: makes rewritings matter); the others exist for the candidate-order
#: ablation, which shows that a smarter built-in order removes much of
#: the ID sensitivity — at the price of picking *one* heuristic for all
#: queries, exactly the trade-off the paper's Ψ-framework sidesteps.
SELECTION_POLICIES = ("id", "degree", "rarity")


class VF2Matcher(Matcher):
    """VF2 with configurable next-vertex selection (default: node ID).

    Parameters
    ----------
    selection:
        ``"id"`` — smallest node ID on the frontier (paper-faithful);
        ``"degree"`` — highest query degree first (DND-like built-in);
        ``"rarity"`` — rarest label in the stored graph first
        (ILF-like built-in).
    """

    name = "VF2"

    def __init__(self, selection: str = "id") -> None:
        if selection not in SELECTION_POLICIES:
            raise ValueError(
                f"selection must be one of {SELECTION_POLICIES}"
            )
        self.selection = selection
        if selection != "id":
            self.name = f"VF2[{selection}]"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
        root_candidates: tuple[int, ...] | None = None,
    ) -> SearchEngine:
        """See :meth:`Matcher.engine`.

        ``root_candidates`` optionally restricts the stored-graph
        candidates of the *first* matched query vertex.  Grapes'
        multithreaded verification partitions the root candidate set
        into contiguous slices, one per thread — the union of slices
        explores exactly the full search space, so racing slices is a
        sound parallelisation of a single VF2 run.
        """
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if (
            nq > graph.order
            or query.size > graph.size
            or not _label_multiset_feasible(index, query)
        ):
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views (hoisted out of every inner loop)
        adj = index.adjacency
        masks = index.adj_masks
        g_codes = index.label_codes
        q_adj = query.adjacency()
        q_masks = query.adjacency_masks()
        q_labels = query.labels
        # feasibility passed, so every query label exists in the store
        q_codes = tuple(index.code_of[lab] for lab in q_labels)
        q_degrees = tuple(len(nbrs) for nbrs in q_adj)

        q_to_g: dict[int, int] = {}
        matched_mask = 0  # stored-graph vertices in the partial map
        q_matched_mask = 0  # query vertices in the partial map

        if self.selection == "id":
            def selection_key(u: int) -> tuple:
                return (u,)
        elif self.selection == "degree":
            def selection_key(u: int) -> tuple:
                return (-q_degrees[u], u)
        else:  # rarity
            def selection_key(u: int) -> tuple:
                return (
                    index.label_frequencies.get(q_labels[u], 0), u
                )

        def next_query_vertex() -> int:
            """Best unmatched frontier vertex under the policy.

            Falls back to the best unmatched vertex overall when the
            frontier is empty (search start, or disconnected queries).
            """
            best_frontier = -1
            best_any = -1
            for u in range(nq):
                if (q_matched_mask >> u) & 1:
                    continue
                if best_any < 0 or selection_key(u) < selection_key(
                    best_any
                ):
                    best_any = u
                if q_masks[u] & q_matched_mask and (
                    best_frontier < 0
                    or selection_key(u) < selection_key(best_frontier)
                ):
                    best_frontier = u
            return best_frontier if best_frontier >= 0 else best_any

        def candidates(u: int) -> list[int]:
            """Feasible stored-graph candidates for query vertex ``u``.

            Consistency (label match + adjacency to all matched
            neighbours' images, one bitmask intersection) is checked
            here; the caller charges one step per candidate and applies
            the lookahead rules.
            """
            lab_code = q_codes[u]
            imgs = [q_to_g[w] for w in q_adj[u] if (q_matched_mask >> w) & 1]
            if imgs:
                # iterate the image neighbourhood of the first matched
                # neighbour (ID order); require adjacency to the rest
                # via a single mask intersection
                first = imgs[0]
                need = 0
                for img in imgs[1:]:
                    need |= 1 << img
                return [
                    c
                    for c in adj[first]
                    if not (matched_mask >> c) & 1
                    and g_codes[c] == lab_code
                    and masks[c] & need == need
                ]
            pool = (
                root_candidates
                if root_candidates is not None and not q_to_g
                else index.candidates_by_label(q_labels[u])
            )
            return [
                c
                for c in pool
                if not (matched_mask >> c) & 1 and g_codes[c] == lab_code
            ]

        def record() -> None:
            outcome.found = True
            outcome.num_embeddings += 1
            if not count_only:
                outcome.embeddings.append(dict(q_to_g))

        def search() -> SearchEngine:
            nonlocal matched_mask, q_matched_mask
            if len(q_to_g) == nq:
                record()
                return None
            u = next_query_vertex()
            # lookahead rules 2/3, query side: constant across the
            # candidate loop (the partial map is frame-invariant)
            q_frontier = 0
            q_rest = 0
            for w in q_adj[u]:
                if (q_matched_mask >> w) & 1:
                    continue
                if q_masks[w] & q_matched_mask:
                    q_frontier += 1
                else:
                    q_rest += 1
            q_total = q_frontier + q_rest
            u_bit = 1 << u
            pending = 0  # batched candidate-probe steps
            for c in candidates(u):
                pending += 1
                # lookahead, graph side; counts only grow, so stop as
                # soon as both dominance conditions hold
                g_frontier = 0
                g_rest = 0
                ok = q_total == 0
                if not ok:
                    for d in adj[c]:
                        if (matched_mask >> d) & 1:
                            continue
                        if masks[d] & matched_mask:
                            g_frontier += 1
                        else:
                            g_rest += 1
                        if (
                            g_frontier >= q_frontier
                            and g_frontier + g_rest >= q_total
                        ):
                            ok = True
                            break
                if not ok:
                    continue
                yield pending
                pending = 0
                q_to_g[u] = c
                matched_mask |= 1 << c
                q_matched_mask |= u_bit
                yield from search()
                del q_to_g[u]
                matched_mask &= ~(1 << c)
                q_matched_mask &= ~u_bit
                if outcome.num_embeddings >= max_embeddings:
                    return None
            if pending:
                yield pending
            return None

        yield from search()
        # the search ended on its own (space exhausted or embedding cap
        # reached) — either way this attempt completed, it was not killed
        outcome.exhausted = True
        return outcome
