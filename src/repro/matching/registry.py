"""Algorithm registry: look up matchers by their paper short-names."""

from __future__ import annotations

from collections.abc import Callable

from .engine import Matcher
from .graphql import GraphQLMatcher
from .quicksi import QuickSIMatcher
from .reference import ReferenceMatcher
from .spath import SPathMatcher
from .turbo import TurboISOMatcher
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher

__all__ = ["MATCHER_FACTORIES", "make_matcher", "available_matchers"]

MATCHER_FACTORIES: dict[str, Callable[[], Matcher]] = {
    "VF2": VF2Matcher,
    "QSI": QuickSIMatcher,
    "GQL": GraphQLMatcher,
    "SPA": SPathMatcher,
    "ULL": UllmannMatcher,
    "TUR": TurboISOMatcher,
    "REF": ReferenceMatcher,
}


def make_matcher(name: str) -> Matcher:
    """Instantiate a matcher by short name (``"GQL"``, ``"SPA"``, ...)."""
    try:
        factory = MATCHER_FACTORIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(MATCHER_FACTORIES))
        raise KeyError(f"unknown matcher {name!r}; known: {known}") from None
    return factory()


def available_matchers() -> tuple[str, ...]:
    """Registered matcher short names."""
    return tuple(sorted(MATCHER_FACTORIES))
