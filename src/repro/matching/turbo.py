"""TurboISO-style matcher (Han et al., SIGMOD 2013 — paper ref [6]).

The paper's related-work section points at TurboISO as the
newer-generation algorithm proposed after the comparison study [12]:
"since the publication just a few years ago of [12] ... newer
algorithms have been proposed [6] with better performance.  Nonetheless
all algorithms show exponential execution times even at small query
sizes".  Including it in this reproduction serves two purposes: it
extends the Ψ-framework's portfolio with a genuinely different cost
profile, and it lets the benches confirm the paper's claim that even a
stronger algorithm keeps stragglers (and so still benefits from
racing).

This is a faithful-in-spirit implementation of TurboISO's core ideas:

* **start-vertex selection** by minimum ``freq(label) / degree`` rank;
* a **query spanning tree** rooted at the start vertex (BFS);
* **candidate-region exploration**: for every stored-graph candidate of
  the root, the region's per-query-vertex candidate sets (the CR index)
  are computed top-down along the tree; a region with an empty set is
  pruned wholesale before any matching;
* a **per-region matching order** by ascending candidate-set size
  (connected order over the query);
* backtracking restricted to the region's candidate sets, with
  non-tree query edges verified on the fly.

The NEC (neighbourhood equivalence class) compression of the original
is omitted — it optimises permutations of interchangeable query
vertices, which at this reproduction's query sizes is a constant-factor
concern (recorded in DESIGN.md §2).

One engine step is charged per region-exploration probe and per join
candidate probe.
"""

from __future__ import annotations

from collections import deque

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["TurboISOMatcher"]


class TurboISOMatcher(Matcher):
    """TurboISO: candidate-region exploration + per-region ordering."""

    name = "TUR"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order or query.size > graph.size:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views
        adj = index.adjacency
        masks = index.adj_masks
        g_codes = index.label_codes
        degs = index.degrees
        q_adj = query.adjacency()
        q_labels = query.labels

        # ---- start vertex: minimum freq(label)/degree rank ------------
        def rank(u: int) -> tuple:
            freq = index.label_frequencies.get(q_labels[u], 0)
            deg = max(query.degree(u), 1)
            return (freq / deg, u)

        start = min(query.vertices(), key=rank)

        # ---- query spanning tree (BFS from the start vertex) ----------
        parent: dict[int, int | None] = {start: None}
        tree_order: list[int] = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in query.neighbors(u):
                if w not in parent:
                    parent[w] = u
                    tree_order.append(w)
                    queue.append(w)
        if len(tree_order) < nq:
            # disconnected query: attach remaining vertices as extra
            # roots (regions then constrain only the connected part)
            for u in query.vertices():
                if u not in parent:
                    parent[u] = None
                    tree_order.append(u)

        degrees_q = [query.degree(u) for u in query.vertices()]

        def region_candidates(root_image: int):
            """CR sets for the region rooted at ``root_image``.

            Top-down along the tree: a vertex's candidates are the
            label/degree-feasible neighbours of its parent's candidate
            set.  Returns ``None`` (region pruned) when any set empties.
            The engine charges the exploration after the fact (one step
            per surviving CR entry).
            """
            cr: dict[int, set[int]] = {start: {root_image}}
            for u in tree_order[1:]:
                p = parent[u]
                du = degrees_q[u]
                if p is None:
                    pool = index.candidates_by_label(q_labels[u])
                    cr[u] = {c for c in pool if degs[c] >= du}
                    continue
                code = index.code_of.get(q_labels[u], -1)
                found: set[int] = set()
                for vp in cr[p]:
                    for c in adj[vp]:
                        if g_codes[c] == code and degs[c] >= du:
                            found.add(c)
                if not found:
                    return None
                cr[u] = found
            return cr

        def matching_order(cr: dict[int, set[int]]) -> list[int]:
            """Connected order by ascending candidate-set size."""
            order = [start]
            chosen = {start}
            while len(order) < nq:
                best = -1
                best_key: tuple | None = None
                for u in query.vertices():
                    if u in chosen:
                        continue
                    connected = any(
                        w in chosen for w in query.neighbors(u)
                    )
                    key = (0 if connected else 1, len(cr[u]), u)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = u
                order.append(best)
                chosen.add(best)
            return order

        q_to_g: dict[int, int] = {}
        used_mask = 0

        def search(
            pos: int, order: list[int], cr: dict[int, set[int]]
        ) -> SearchEngine:
            nonlocal used_mask
            if pos == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            u = order[pos]
            mapped_nbrs = [
                q_to_g[w] for w in q_adj[u] if w in q_to_g
            ]
            if mapped_nbrs:
                cr_u = cr[u]
                pool = [
                    c for c in adj[mapped_nbrs[0]] if c in cr_u
                ]
                need = 0
                for img in mapped_nbrs[1:]:
                    need |= 1 << img
            else:
                pool = sorted(cr[u])
                need = 0
            pending = 0  # batched join-candidate probes
            for c in pool:
                pending += 1
                if (used_mask >> c) & 1:
                    continue
                if masks[c] & need == need:
                    yield pending
                    pending = 0
                    q_to_g[u] = c
                    used_mask |= 1 << c
                    yield from search(pos + 1, order, cr)
                    del q_to_g[u]
                    used_mask &= ~(1 << c)
                    if outcome.num_embeddings >= max_embeddings:
                        return None
            if pending:
                yield pending
            return None

        # ---- region loop ------------------------------------------------
        start_pool = [
            c
            for c in index.candidates_by_label(q_labels[start])
            if degs[c] >= degrees_q[start]
        ]
        rest_order = tree_order[1:]
        pending = 0
        for root_image in start_pool:
            pending += 1  # one step per explored region root
            cr = region_candidates(root_image)
            if cr is None:
                continue
            # charge the region exploration: one step per CR entry
            pending += sum(len(cr[u]) for u in rest_order)
            yield pending
            pending = 0
            order = matching_order(cr)
            q_to_g[start] = root_image
            used_mask |= 1 << root_image
            yield from search(1, order, cr)
            del q_to_g[start]
            used_mask &= ~(1 << root_image)
            if outcome.num_embeddings >= max_embeddings:
                break
        if pending:
            yield pending

        outcome.exhausted = True
        return outcome
