"""Subgraph-isomorphism matchers (the paper's NFV methods + VF2).

All matchers share the steppable-engine contract of
:class:`repro.matching.engine.Matcher`: deterministic search whose cost
is measured in steps, drivable under a :class:`Budget`, and raceable by
the Ψ-framework.
"""

from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    Budget,
    GraphIndex,
    Matcher,
    MatcherError,
    MatchOutcome,
    drive,
)
from .graphql import GraphQLIndex, GraphQLMatcher
from .quicksi import QIEntry, QuickSIMatcher, build_qi_sequence
from .reference import ReferenceMatcher
from .registry import MATCHER_FACTORIES, available_matchers, make_matcher
from .spath import SPathIndex, SPathMatcher, distance_signature
from .turbo import TurboISOMatcher
from .ullmann import UllmannMatcher
from .vf2 import SELECTION_POLICIES, VF2Matcher

__all__ = [
    "DEFAULT_MAX_EMBEDDINGS",
    "Budget",
    "GraphIndex",
    "Matcher",
    "MatcherError",
    "MatchOutcome",
    "drive",
    "GraphQLIndex",
    "GraphQLMatcher",
    "QIEntry",
    "QuickSIMatcher",
    "build_qi_sequence",
    "ReferenceMatcher",
    "MATCHER_FACTORIES",
    "available_matchers",
    "make_matcher",
    "SPathIndex",
    "SPathMatcher",
    "distance_signature",
    "TurboISOMatcher",
    "UllmannMatcher",
    "VF2Matcher",
    "SELECTION_POLICIES",
]
