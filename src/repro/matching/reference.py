"""Brute-force reference matcher (test oracle).

Plain backtracking over query vertices in ascending ID order with only
the two checks required for correctness (label equality and adjacency of
already-mapped neighbours).  No lookahead, no ordering heuristics — slow
but trivially auditable.  The test suite uses it as ground truth for
every other matcher: on small graphs all matchers must find *exactly*
the same set of embeddings.
"""

from __future__ import annotations

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["ReferenceMatcher"]


class ReferenceMatcher(Matcher):
    """Exhaustive backtracking matcher used as a correctness oracle."""

    name = "REF"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        # fast-path kernel views
        masks = index.adj_masks
        q_adj = query.adjacency()
        q_labels = query.labels

        q_to_g: dict[int, int] = {}
        used_mask = 0

        def search(u: int) -> SearchEngine:
            nonlocal used_mask
            if u == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            need = 0
            for w in q_adj[u]:
                if w in q_to_g:
                    need |= 1 << q_to_g[w]
            pending = 0  # batched candidate probes
            for c in index.candidates_by_label(q_labels[u]):
                pending += 1
                if (used_mask >> c) & 1:
                    continue
                if masks[c] & need == need:
                    yield pending
                    pending = 0
                    q_to_g[u] = c
                    used_mask |= 1 << c
                    yield from search(u + 1)
                    del q_to_g[u]
                    used_mask &= ~(1 << c)
                    if outcome.num_embeddings >= max_embeddings:
                        return None
            if pending:
                yield pending
            return None

        yield from search(0)
        outcome.exhausted = True
        return outcome
