"""Brute-force reference matcher (test oracle).

Plain backtracking over query vertices in ascending ID order with only
the two checks required for correctness (label equality and adjacency of
already-mapped neighbours).  No lookahead, no ordering heuristics — slow
but trivially auditable.  The test suite uses it as ground truth for
every other matcher: on small graphs all matchers must find *exactly*
the same set of embeddings.
"""

from __future__ import annotations

from ..graphs import LabeledGraph
from .engine import (
    DEFAULT_MAX_EMBEDDINGS,
    GraphIndex,
    Matcher,
    MatchOutcome,
    SearchEngine,
)

__all__ = ["ReferenceMatcher"]


class ReferenceMatcher(Matcher):
    """Exhaustive backtracking matcher used as a correctness oracle."""

    name = "REF"

    def engine(
        self,
        index: GraphIndex,
        query: LabeledGraph,
        max_embeddings: int = DEFAULT_MAX_EMBEDDINGS,
        count_only: bool = False,
    ) -> SearchEngine:
        graph = index.graph
        outcome = MatchOutcome(algorithm=self.name)
        nq = query.order
        if nq == 0:
            raise ValueError("empty query graph")
        if nq > graph.order:
            outcome.exhausted = True
            return outcome
            yield  # pragma: no cover - makes this a generator

        q_to_g: dict[int, int] = {}
        used: set[int] = set()

        def search(u: int) -> SearchEngine:
            if u == nq:
                outcome.found = True
                outcome.num_embeddings += 1
                if not count_only:
                    outcome.embeddings.append(dict(q_to_g))
                return None
            lab = query.label(u)
            mapped_nbrs = [
                q_to_g[w] for w in query.neighbors(u) if w in q_to_g
            ]
            for c in index.candidates_by_label(lab):
                yield
                if c in used:
                    continue
                if all(graph.has_edge(c, img) for img in mapped_nbrs):
                    q_to_g[u] = c
                    used.add(c)
                    yield from search(u + 1)
                    del q_to_g[u]
                    used.discard(c)
                    if outcome.num_embeddings >= max_embeddings:
                        return None
            return None

        yield from search(0)
        outcome.exhausted = True
        return outcome
