"""Dataset stand-ins for the paper's evaluation datasets.

The paper evaluates on five datasets (Tables 1 and 2):

====================  ==========================================  =========
Paper dataset         Characteristics (paper)                      Builder
====================  ==========================================  =========
PPI                   20 protein networks, 46 labels, avg 4942     :func:`ppi_like`
                      nodes / 26667 edges, avg degree 10.9
Synthetic (GraphGen)  1000 graphs, 20 labels, avg 1100 nodes,      :func:`graphgen_like`
                      density 0.020, avg degree 24.5
yeast                 3112 nodes / 12519 edges, 184 labels,        :func:`yeast_like`
                      avg degree 8.0, moderate label skew
human                 4674 nodes / 86282 edges, 90 labels,         :func:`human_like`
                      avg degree 36.9 (dense)
wordnet               82670 nodes / 120399 edges, 5 labels,        :func:`wordnet_like`
                      avg degree 2.9 (near-tree), heavy label skew
====================  ==========================================  =========

The originals are not redistributable (and wordnet's hosting URL is long
dead), so each builder *generates* a graph (or graph collection) matching
the published statistics — structure family, density, label count and
label-frequency skew — at a configurable ``scale`` (default ¼-ish of the
paper's sizes so full experiment suites run in minutes in pure Python).
DESIGN.md §2 records this substitution; the paper's findings are driven
exactly by those statistics (see its §6.2 discussion of why rewritings
behave differently on wordnet), so preserving them preserves behaviour.
"""

from .builders import (
    DatasetSummary,
    graphgen_like,
    human_like,
    ppi_like,
    summarize_collection,
    summarize_graph,
    wordnet_like,
    yeast_like,
)

__all__ = [
    "DatasetSummary",
    "graphgen_like",
    "human_like",
    "ppi_like",
    "summarize_collection",
    "summarize_graph",
    "wordnet_like",
    "yeast_like",
]
