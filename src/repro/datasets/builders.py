"""Builders generating the paper's datasets at configurable scale.

See the package docstring for the mapping to the paper's Tables 1-2.
All builders are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass

from ..graphs import (
    LabeledGraph,
    disjoint_union,
    gnm_graph,
    mutate_graph,
    powerlaw_graph,
    sparse_tree_like_graph,
    uniform_labels,
    zipf_labels,
)

__all__ = [
    "DatasetSummary",
    "graphgen_like",
    "ppi_like",
    "yeast_like",
    "human_like",
    "wordnet_like",
    "summarize_graph",
    "summarize_collection",
]


@dataclass(frozen=True)
class DatasetSummary:
    """Statistics mirroring the rows of the paper's Tables 1 and 2."""

    num_graphs: int
    num_labels: int
    avg_nodes: float
    stddev_nodes: float
    avg_edges: float
    avg_density: float
    avg_degree: float
    avg_labels_per_graph: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (name, value) rows for table printing."""
        return [
            ("# graphs", str(self.num_graphs)),
            ("# labels", str(self.num_labels)),
            ("Avg #nodes", f"{self.avg_nodes:.1f}"),
            ("StdDev #nodes", f"{self.stddev_nodes:.1f}"),
            ("Avg #edges", f"{self.avg_edges:.1f}"),
            ("Avg density", f"{self.avg_density:.5f}"),
            ("Avg degree", f"{self.avg_degree:.2f}"),
            ("Avg #labels", f"{self.avg_labels_per_graph:.1f}"),
        ]


def _label_alphabet(count: int) -> list[str]:
    """Label alphabet ``L0..L{count-1}``."""
    return [f"L{i}" for i in range(count)]


# ----------------------------------------------------------------------
# FTV datasets (collections of graphs)
# ----------------------------------------------------------------------

def ppi_like(
    num_graphs: int = 6,
    avg_nodes: int = 160,
    num_labels: int = 10,
    num_templates: int = 5,
    modules_per_graph: int = 3,
    seed: int = 7,
) -> list[LabeledGraph]:
    """PPI stand-in: a family of related, *disconnected* protein networks.

    Paper regime (Table 1): 20 graphs — **all disconnected** — 46 labels,
    avg degree ~10.9, node counts varying widely.  Real PPI networks of
    different species share orthologous interaction modules, which is
    why one query matches (or nearly matches) several stored graphs.
    This builder reproduces that: a shared pool of power-law module
    templates, each dataset graph being the disjoint union of several
    *perturbed* templates (rewired edges, swapped labels).  Near-miss
    modules that pass path filtering but fail verification are exactly
    the paper's expensive FTV stragglers.

    The default label count is scaled down with the node count so the
    *occurrences per label per graph* stay in the paper's regime (PPI:
    4942 nodes / ~28.5 labels per graph ~= 170 per label; here 160/10 =
    16) — label multiplicity, not the alphabet size, is what drives
    sub-iso hardness.
    """
    rng = random.Random(seed)
    alphabet = _label_alphabet(num_labels)
    module_nodes = max(12, avg_nodes // modules_per_graph)
    templates = []
    for _ in range(num_templates):
        n = max(12, int(rng.gauss(module_nodes, module_nodes * 0.3)))
        labels = zipf_labels(n, alphabet, rng, exponent=0.6)
        templates.append(powerlaw_graph(n, 3, labels, rng))
    graphs: list[LabeledGraph] = []
    for i in range(num_graphs):
        modules = [
            mutate_graph(
                templates[rng.randrange(num_templates)],
                rng,
                rewire_fraction=0.08,
                relabel_fraction=0.08,
                label_pool=alphabet,
            )
            for _ in range(modules_per_graph)
        ]
        graphs.append(disjoint_union(modules, name=f"ppi_{i:02d}"))
    return graphs


def graphgen_like(
    num_graphs: int = 10,
    avg_nodes: int = 90,
    density: float = 0.11,
    num_labels: int = 6,
    num_templates: int = 5,
    seed: int = 11,
) -> list[LabeledGraph]:
    """GraphGen-style synthetic FTV dataset.

    Paper regime (Table 1): many uniform random *connected* graphs, 20
    labels, higher density and degree than PPI — the "more challenging"
    dataset.  As with :func:`ppi_like`, graphs are drawn as perturbed
    copies of a shared template pool so that queries have non-trivial
    candidate sets; unlike PPI the graphs stay connected (Table 1:
    0 disconnected), with the perturbation applied to a single dense
    template.  As in :func:`ppi_like`, the label alphabet is scaled
    with the node count to preserve per-label multiplicity (paper:
    1100 nodes / 20 labels = 55 per label; here 90/6 = 15).
    """
    rng = random.Random(seed)
    alphabet = _label_alphabet(num_labels)
    templates = []
    for _ in range(num_templates):
        n = max(20, int(rng.gauss(avg_nodes, avg_nodes * 0.25)))
        m = max(n - 1, int(density * n * (n - 1) / 2))
        labels = uniform_labels(n, alphabet, rng)
        templates.append(gnm_graph(n, m, labels, rng))
    graphs: list[LabeledGraph] = []
    for i in range(num_graphs):
        base = templates[rng.randrange(num_templates)]
        graphs.append(
            mutate_graph(
                base,
                rng,
                rewire_fraction=0.10,
                relabel_fraction=0.10,
                label_pool=alphabet,
                name=f"syn_{i:03d}",
            )
        )
    return graphs


# ----------------------------------------------------------------------
# NFV datasets (single large graph)
# ----------------------------------------------------------------------

def yeast_like(
    n: int = 800,
    num_labels: int = 46,
    seed: int = 13,
) -> LabeledGraph:
    """Yeast stand-in: sparse power-law graph, many moderately-skewed labels.

    Paper regime (Table 2): 3112 nodes, avg degree 8.0, 184 labels with
    stddev(frequency) ~2.5x the mean.  Label count scales with n.
    """
    rng = random.Random(seed)
    alphabet = _label_alphabet(num_labels)
    labels = zipf_labels(n, alphabet, rng, exponent=0.9)
    return powerlaw_graph(n, 4, labels, rng, name="yeast")


def human_like(
    n: int = 700,
    num_labels: int = 24,
    seed: int = 17,
) -> LabeledGraph:
    """Human stand-in: dense power-law graph, fewer labels.

    Paper regime (Table 2): avg degree 36.9 — by far the densest NFV
    dataset — and 90 labels over 4674 nodes.  We scale degree with size
    (attachment factor 9 -> avg degree ~18 at n=700) to stay feasible in
    pure Python while remaining the clearly-densest dataset.
    """
    rng = random.Random(seed)
    alphabet = _label_alphabet(num_labels)
    labels = zipf_labels(n, alphabet, rng, exponent=0.7)
    return powerlaw_graph(n, 9, labels, rng, name="human")


def wordnet_like(
    n: int = 2400,
    num_labels: int = 5,
    seed: int = 19,
) -> LabeledGraph:
    """Wordnet stand-in: near-tree graph with 5 heavily-skewed labels.

    Paper regime (Table 2): avg degree 2.9, density 3.5e-5, only 5 labels
    whose frequencies are highly skewed — the regime where the paper
    found rewritings least effective (queries are mostly 1-2-label paths).
    """
    rng = random.Random(seed)
    alphabet = _label_alphabet(num_labels)
    labels = zipf_labels(n, alphabet, rng, exponent=1.6)
    return sparse_tree_like_graph(n, 0.45, labels, rng, name="wordnet")


# ----------------------------------------------------------------------
# summaries (Tables 1-2 reproduction helpers)
# ----------------------------------------------------------------------

def summarize_graph(g: LabeledGraph) -> DatasetSummary:
    """Summary row for a single stored graph (Table 2 shape)."""
    return summarize_collection([g])


def summarize_collection(graphs: list[LabeledGraph]) -> DatasetSummary:
    """Summary over a graph collection (Table 1 shape)."""
    if not graphs:
        raise ValueError("empty dataset")
    nodes = [g.order for g in graphs]
    all_labels: set = set()
    for g in graphs:
        all_labels.update(g.distinct_labels())
    return DatasetSummary(
        num_graphs=len(graphs),
        num_labels=len(all_labels),
        avg_nodes=statistics.mean(nodes),
        stddev_nodes=statistics.pstdev(nodes) if len(nodes) > 1 else 0.0,
        avg_edges=statistics.mean(g.size for g in graphs),
        avg_density=statistics.mean(g.density() for g in graphs),
        avg_degree=statistics.mean(g.average_degree() for g in graphs),
        avg_labels_per_graph=statistics.mean(
            len(g.distinct_labels()) for g in graphs
        ),
    )
