"""repro — reproduction of "Subgraph Querying with Parallel Use of Query
Rewritings and Alternative Algorithms" (Katsarou, Ntarmos, Triantafillou;
EDBT 2017).

The package implements, from scratch:

* a labeled-graph substrate with IO and dataset generators
  (:mod:`repro.graphs`, :mod:`repro.datasets`);
* the paper's NFV matchers — VF2, QuickSI, GraphQL, sPath (plus an
  Ullmann baseline and a brute-force oracle) — as deterministic,
  steppable, budget-capped search engines (:mod:`repro.matching`);
* the paper's FTV methods — Grapes and GGSX (:mod:`repro.indexing`);
* the five query rewritings ILF / IND / DND / ILF+IND / ILF+DND
  (:mod:`repro.rewriting`);
* the Ψ-framework, which races rewritings and/or alternative algorithms
  in parallel and keeps the first finisher (:mod:`repro.psi`);
* workload generation, the paper's metrics (QLA/WLA, (max/min),
  speedup*), and an experiment harness regenerating every figure and
  table of the paper's evaluation (:mod:`repro.workload`,
  :mod:`repro.metrics`, :mod:`repro.harness`).

Quickstart::

    from repro.datasets import yeast_like
    from repro.matching import Budget
    from repro.psi import PsiNFV, Variant
    from repro.workload import generate_workload

    graph = yeast_like()
    query = generate_workload([graph], 1, 8, seed=1)[0].graph
    psi = PsiNFV(graph)
    result = psi.race(
        query,
        [Variant("GQL", "Orig"), Variant("SPA", "Orig"),
         Variant("GQL", "ILF"), Variant("SPA", "DND")],
        budget=Budget(max_steps=200_000),
    )
    print(result.winner, result.steps, len(result.embeddings))
"""

from . import (
    caching,
    datasets,
    graphs,
    harness,
    indexing,
    matching,
    metrics,
    psi,
    rewriting,
    scheduling,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "caching",
    "datasets",
    "graphs",
    "harness",
    "indexing",
    "matching",
    "metrics",
    "psi",
    "rewriting",
    "scheduling",
    "workload",
    "__version__",
]
