"""Deterministic simulation of parallel work schedules.

CPython threads cannot speed up CPU-bound search (the GIL), so this
reproduction *simulates* parallel execution over deterministic step
costs instead of measuring wall-clock noise (see DESIGN.md §2).  Two
primitives cover everything the paper's systems need:

* :func:`first_match_schedule` — Grapes' multithreaded verification:
  a list of tasks (connected components to verify) is list-scheduled
  onto ``workers`` identical workers; the run ends at the first task
  that reports a match (remaining work is killed), or at the makespan.
* The Ψ-framework's *race* semantics (all variants start simultaneously,
  first finisher wins) are the special case ``workers >= len(tasks)``;
  :mod:`repro.psi` builds on the same cost algebra.

Costs are in engine steps.  Tasks are lazily evaluated: a task whose
scheduled start time already exceeds the current winning finish time (or
the budget) is never executed at all, mirroring a real kill.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "TaskResult",
    "ScheduleOutcome",
    "first_match_schedule",
    "FairShareLedger",
    "skew_ratio",
]


def skew_ratio(loads: Sequence[int]) -> float:
    """Hottest-to-coldest load ratio of a set of workers/shards.

    The rebalancing trigger signal: ``max(loads) / min(loads)`` in the
    same step-cost currency as every other scheduling decision.  A
    perfectly balanced set scores 1.0; an idle member alongside a busy
    one scores ``inf`` (maximally skewed); an entirely idle set scores
    1.0 (nothing to balance).  Negative loads are a caller bug.
    """
    if not loads:
        return 1.0
    lo, hi = min(loads), max(loads)
    if lo < 0:
        raise ValueError("loads must be non-negative")
    if hi == 0:
        return 1.0
    if lo == 0:
        return float("inf")
    return hi / lo


@dataclass(frozen=True)
class TaskResult:
    """Cost of one task: steps consumed and whether it found a match.

    ``killed`` marks a task that hit its own cap before finishing; its
    ``steps`` then reflect the cap.
    """

    steps: int
    found: bool
    killed: bool = False


@dataclass
class ScheduleOutcome:
    """Result of a simulated parallel run.

    Attributes
    ----------
    time:
        Simulated parallel time in steps (capped at ``budget_steps``).
    found:
        Whether some task reported a match before the cap.
    killed:
        True when the schedule hit ``budget_steps`` without finishing.
    executed:
        Number of tasks actually evaluated (lazy evaluation skips tasks
        that a real run would have killed before their first step).
    task_results:
        Results of the evaluated tasks, in schedule order.
    """

    time: int
    found: bool
    killed: bool
    executed: int
    task_results: list[TaskResult] = field(default_factory=list)


class FairShareLedger:
    """Weighted fair-share accounting in the step-cost currency.

    The serving layer multiplexes many clients over one simulated worker
    pool; *who runs next* is decided by the same cost algebra the
    schedule simulator uses — charged steps, not wall clock.  Each key
    (a tenant) accrues the steps its work consumed; its **virtual time**
    is ``charged / weight``, and :meth:`pick` selects the candidate with
    the least virtual time (classic weighted fair queueing, made
    deterministic by breaking ties on registration order).

    Charges accept plain step counts or a :class:`TaskResult` /
    :class:`ScheduleOutcome`, so admission control can charge exactly
    what :func:`first_match_schedule`-style simulations report.
    """

    def __init__(self) -> None:
        self._charged: dict[object, int] = {}
        self._weights: dict[object, float] = {}
        self._order: dict[object, int] = {}

    def register(self, key: object, weight: float = 1.0) -> None:
        """Declare ``key`` with a fair-share ``weight`` (idempotent)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if key not in self._order:
            self._order[key] = len(self._order)
            self._charged[key] = 0
        self._weights[key] = weight

    def charge(self, key: object, cost: "int | TaskResult | ScheduleOutcome") -> None:
        """Charge ``key`` the steps of ``cost``."""
        if isinstance(cost, TaskResult):
            steps = cost.steps
        elif isinstance(cost, ScheduleOutcome):
            steps = cost.time
        else:
            steps = int(cost)
        if steps < 0:
            raise ValueError("cannot charge negative steps")
        if key not in self._order:
            self.register(key)
        self._charged[key] += steps

    def charged(self, key: object) -> int:
        """Total steps charged to ``key`` so far."""
        return self._charged.get(key, 0)

    def virtual_time(self, key: object) -> float:
        """``charged / weight`` — the WFQ service received by ``key``."""
        if key not in self._order:
            return 0.0
        return self._charged[key] / self._weights[key]

    def registration_index(self, key: object) -> int:
        """Deterministic tie-break rank (registration order)."""
        return self._order.get(key, len(self._order))

    def pick(self, candidates: Sequence[object]) -> Optional[object]:
        """The candidate owed the most service (least virtual time).

        Ties break by registration order, then by candidate position —
        fully deterministic for any fixed submission history.
        """
        best = None
        best_rank: Optional[tuple] = None
        for pos, key in enumerate(candidates):
            if key not in self._order:
                self.register(key)
            rank = (self.virtual_time(key), self._order[key], pos)
            if best_rank is None or rank < best_rank:
                best, best_rank = key, rank
        return best

    def snapshot(self) -> dict:
        """Per-key charged steps (metrics/debugging)."""
        return dict(self._charged)


def first_match_schedule(
    tasks: Sequence[Callable[[int], TaskResult]],
    workers: int,
    budget_steps: Optional[int] = None,
) -> ScheduleOutcome:
    """List-schedule ``tasks`` over ``workers``; stop at the first match.

    Each task is a callable receiving its *remaining step allowance*
    (``budget_steps - start_time``; or a sentinel large value when
    unbudgeted) and returning a :class:`TaskResult`.  Tasks are assigned
    in order to the earliest-free worker (ties: lowest worker id), which
    is the classic deterministic list schedule.

    The run finishes at the earliest finish time among match-reporting
    tasks (first-match semantics, remaining work killed), else at the
    makespan; either is capped at ``budget_steps``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    free_at = [0] * workers
    cap = budget_steps if budget_steps is not None else None
    best_finish: Optional[int] = None  # earliest match finish
    makespan = 0
    executed = 0
    results: list[TaskResult] = []
    for task in tasks:
        worker = min(range(workers), key=lambda w: (free_at[w], w))
        start = free_at[worker]
        if best_finish is not None and start >= best_finish:
            continue  # would be killed before starting
        if cap is not None and start >= cap:
            continue  # budget exceeded before this task could start
        allowance = (cap - start) if cap is not None else (1 << 62)
        if best_finish is not None:
            allowance = min(allowance, best_finish - start)
        result = task(allowance)
        executed += 1
        results.append(result)
        finish = start + result.steps
        free_at[worker] = finish
        makespan = max(makespan, finish)
        if result.found:
            best_finish = (
                finish if best_finish is None else min(best_finish, finish)
            )
    if best_finish is not None:
        time = best_finish if cap is None else min(best_finish, cap)
        found = cap is None or best_finish <= cap
        return ScheduleOutcome(
            time=time,
            found=found,
            killed=not found,
            executed=executed,
            task_results=results,
        )
    if cap is not None and (
        makespan > cap or any(r.killed for r in results)
    ):
        return ScheduleOutcome(
            time=cap,
            found=False,
            killed=True,
            executed=executed,
            task_results=results,
        )
    return ScheduleOutcome(
        time=makespan,
        found=False,
        killed=False,
        executed=executed,
        task_results=results,
    )
